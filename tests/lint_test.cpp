// Lint-engine tests: the witness contract (every error-severity semantic
// diagnostic reproduces its misbehavior against the policy), deterministic
// SARIF/JSON output across executors and thread counts, baseline
// suppression, governance partial results, and the CLI's exit-code
// contract driven in-process through run_lint_cli.

#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "adapters/cisco.hpp"
#include "adapters/iptables.hpp"
#include "lint/baseline.hpp"
#include "lint/cli.hpp"
#include "lint/engine.hpp"
#include "lint/render.hpp"
#include "lint/sarif.hpp"
#include "rt/executor.hpp"
#include "test_util.hpp"

#ifndef DFW_CORPUS_DIR
#error "DFW_CORPUS_DIR must point at tests/corpus (set by CMake)"
#endif

namespace dfw::lint {
namespace {

using test::tiny2;
using test::tiny3;

Rule rule(const Schema& s, Interval x, Interval y, Decision d) {
  return Rule(s, {IntervalSet(x), IntervalSet(y)}, d);
}

LintReport lint(const Policy& policy, const LintOptions& options = {}) {
  LintInput input;
  input.policy = &policy;
  input.decisions = &default_decisions();
  return LintEngine().run(input, options);
}

const Diagnostic* find_check(const LintReport& report,
                             std::string_view check_id) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.check_id == check_id) {
      return &d;
    }
  }
  return nullptr;
}

std::size_t count_check(const LintReport& report, std::string_view check_id) {
  std::size_t n = 0;
  for (const Diagnostic& d : report.diagnostics) {
    n += d.check_id == check_id;
  }
  return n;
}

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  EXPECT_TRUE(out.good()) << path;
  return path;
}

int cli(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_lint_cli(args, out, err);
  if (out_text != nullptr) {
    *out_text = out.str();
  }
  if (err_text != nullptr) {
    *err_text = err.str();
  }
  return code;
}

// ---------------------------------------------------------------------------
// The witness contract: error-severity semantic findings reproduce.

TEST(LintWitness, ShadowedRuleWitnessNeverFirstMatchesTheRule) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     rule(s, Interval(1, 2), Interval(1, 2), kDiscard),
                     Rule::catch_all(s, kAccept)});
  const LintReport report = lint(p);
  const Diagnostic* d = find_check(report, "policy.shadowed-rule");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->rule, 1u);
  EXPECT_EQ(d->related_rule, 0u);
  ASSERT_TRUE(d->witness.has_value());
  ASSERT_TRUE(d->witness->observed.has_value());
  const Packet pkt = witness_packet(*d->witness);
  // The packet lies inside the flagged rule's predicate, yet the rule
  // never first-matches it and the policy decides against the rule.
  EXPECT_TRUE(p.rule(1).matches(pkt));
  ASSERT_TRUE(p.first_match(pkt).has_value());
  EXPECT_NE(*p.first_match(pkt), 1u);
  EXPECT_EQ(p.evaluate(pkt), *d->witness->observed);
  EXPECT_NE(p.evaluate(pkt), p.rule(1).decision());
}

TEST(LintWitness, DeadRuleFromJointCoverageWitnessReproduces) {
  // Neither earlier rule alone shadows rule 3 — only their union does, so
  // the pair scan stays quiet and the semantic pass must carry the proof.
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 7), kAccept),
                     rule(s, Interval(4, 7), Interval(0, 7), kAccept),
                     Rule::catch_all(s, kDiscard)});
  const LintReport report = lint(p);
  const Diagnostic* d = find_check(report, "policy.dead-rule");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->rule, 2u);
  EXPECT_EQ(find_check(report, "policy.shadowed-rule"), nullptr);
  ASSERT_TRUE(d->witness.has_value());
  const Packet pkt = witness_packet(*d->witness);
  EXPECT_TRUE(p.rule(2).matches(pkt));
  EXPECT_NE(*p.first_match(pkt), 2u);
  ASSERT_TRUE(d->witness->observed.has_value());
  EXPECT_EQ(p.evaluate(pkt), *d->witness->observed);
}

TEST(LintWitness, NotComprehensiveWitnessFallsOffThePolicy) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 7), kAccept)});
  const LintReport report = lint(p);
  const Diagnostic* d = find_check(report, "policy.not-comprehensive");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  ASSERT_TRUE(d->witness.has_value());
  EXPECT_FALSE(d->witness->observed.has_value());  // the class falls off
  const Packet pkt = witness_packet(*d->witness);
  EXPECT_FALSE(p.first_match(pkt).has_value());
  EXPECT_THROW(p.evaluate(pkt), std::logic_error);
}

TEST(LintWitness, PropertyViolationWitnessShowsObservedAndExpected) {
  const Schema s = tiny2();
  const Policy p(s, {Rule::catch_all(s, kDiscard)});
  LintInput input;
  input.policy = &p;
  input.decisions = &default_decisions();
  Property prop;
  prop.name = "x2-open";
  prop.scope = Query::any(s);
  prop.scope.constraints[0] = IntervalSet(Interval(2, 2));
  prop.scope.decision = kAccept;
  prop.mode = PropertyMode::kForAll;
  input.properties.push_back(prop);
  const LintReport report = LintEngine().run(input, {});
  const Diagnostic* d = find_check(report, "policy.decision-unreachable");
  ASSERT_NE(d, nullptr);  // nothing maps to accept in this policy
  const Diagnostic* v = find_check(report, "property.violation");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->severity, Severity::kError);
  ASSERT_TRUE(v->witness.has_value());
  ASSERT_TRUE(v->witness->observed.has_value());
  ASSERT_TRUE(v->witness->expected.has_value());
  EXPECT_EQ(*v->witness->expected, kAccept);
  const Packet pkt = witness_packet(*v->witness);
  EXPECT_EQ(pkt[0], 2u);  // inside the property's scope
  EXPECT_EQ(p.evaluate(pkt), *v->witness->observed);
  EXPECT_NE(p.evaluate(pkt), *v->witness->expected);
}

TEST(LintWitness, ExistsAndMalformedPropertiesAreWarnings) {
  const Schema s = tiny2();
  const Policy p(s, {Rule::catch_all(s, kDiscard)});
  LintInput input;
  input.policy = &p;
  input.decisions = &default_decisions();
  Property exists;
  exists.name = "some-accept";
  exists.scope = Query::any(s);
  exists.scope.decision = kAccept;
  exists.mode = PropertyMode::kExists;
  input.properties.push_back(exists);
  Property malformed;
  malformed.name = "no-decision";
  malformed.scope = Query::any(s);
  input.properties.push_back(malformed);
  const LintReport report = LintEngine().run(input, {});
  const Diagnostic* u = find_check(report, "property.unsatisfied");
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->severity, Severity::kWarning);
  EXPECT_FALSE(u->witness.has_value());  // absence finding: no witness
  EXPECT_NE(find_check(report, "property.malformed"), nullptr);
}

TEST(Lint, UnreachableDecisionNamedInMessage) {
  DecisionSet decisions;
  const Decision log = decisions.add("accept_log");
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 7), kDiscard),
                     Rule::catch_all(s, kAccept)});
  LintInput input;
  input.policy = &p;
  input.decisions = &decisions;
  const LintReport report = LintEngine().run(input, {});
  ASSERT_NE(log, kAccept);
  const Diagnostic* d = find_check(report, "policy.decision-unreachable");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(count_check(report, "policy.decision-unreachable"), 1u);
  EXPECT_NE(d->message.find("accept_log"), std::string::npos);
}

TEST(Lint, MergeAdjacentAndCompactionNotes) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 7), kAccept),
                     rule(s, Interval(4, 7), Interval(0, 7), kAccept),
                     Rule::catch_all(s, kDiscard)});
  const LintReport report = lint(p);
  const Diagnostic* merge = find_check(report, "rule.merge-adjacent");
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(merge->severity, Severity::kNote);
  EXPECT_EQ(merge->rule, 0u);
  EXPECT_EQ(merge->related_rule, 1u);
  EXPECT_NE(merge->message.find("x"), std::string::npos);
  // r1 + r2 fold into one catch-all-accept... which also makes the
  // whole-policy compaction note fire (2 rules suffice).
  EXPECT_NE(find_check(report, "policy.compactable"), nullptr);
}

// ---------------------------------------------------------------------------
// Adapter-level lints surface through the engine with source lines.

TEST(Lint, IptablesAdapterNotesBecomeDiagnostics) {
  const std::string text =
      ":INPUT DROP [0:0]\n"
      ":INPUT DROP [0:0]\n"
      "-A INPUT --dport 25 -j ACCEPT\n";
  LintInput input;
  std::optional<Policy> p;
  ASSERT_NO_THROW(
      p.emplace(parse_iptables_save(text, "INPUT", &input.adapter_notes)));
  input.policy = &*p;
  input.decisions = &default_decisions();
  LintOptions options;
  options.passes = {"adapter"};
  const LintReport report = LintEngine().run(input, options);
  const Diagnostic* dup = find_check(report, "adapter.iptables.duplicate-chain");
  ASSERT_NE(dup, nullptr);
  EXPECT_EQ(dup->line, 2u);
  const Diagnostic* port =
      find_check(report, "adapter.iptables.port-without-proto");
  ASSERT_NE(port, nullptr);
  EXPECT_EQ(port->line, 3u);
  EXPECT_EQ(port->severity, Severity::kWarning);
}

TEST(Lint, CiscoAdapterNotesBecomeDiagnostics) {
  const std::string text =
      "access-list 101 permit tcp any host 192.168.0.1 eq smtp log\n"
      "access-list 101 deny ip any any\n";
  LintInput input;
  std::optional<Policy> p;
  ASSERT_NO_THROW(
      p.emplace(parse_cisco_acl(text, "101", &input.adapter_notes)));
  input.policy = &*p;
  input.decisions = &default_decisions();
  LintOptions options;
  options.passes = {"adapter"};
  const LintReport report = LintEngine().run(input, options);
  const Diagnostic* log = find_check(report, "adapter.cisco.log-ignored");
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->line, 1u);
  EXPECT_NE(find_check(report, "adapter.cisco.redundant-implicit-deny"),
            nullptr);
}

// ---------------------------------------------------------------------------
// Engine mechanics: pass selection, fingerprints, input validation.

TEST(Lint, PassSelectionRunsOnlyNamedPasses) {
  const Schema s = tiny2();
  const Policy p(s, {Rule::catch_all(s, kAccept)});
  LintOptions options;
  options.passes = {"coverage"};
  const LintReport report = lint(p, options);
  EXPECT_EQ(report.passes_run, (std::vector<std::string>{"coverage"}));
  LintOptions disabled;
  disabled.disabled = {"coverage", "redundancy"};
  const LintReport rest = lint(p, disabled);
  for (const std::string& name : rest.passes_run) {
    EXPECT_NE(name, "coverage");
    EXPECT_NE(name, "redundancy");
  }
}

TEST(Lint, UnknownPassNameIsWarnedNotFatal) {
  const Schema s = tiny2();
  const Policy p(s, {Rule::catch_all(s, kAccept)});
  LintOptions options;
  options.passes = {"coverage", "no-such-pass"};
  const LintReport report = lint(p, options);
  EXPECT_TRUE(report.complete);
  const Diagnostic* d = find_check(report, "lint.unknown-pass");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("no-such-pass"), std::string::npos);
}

TEST(Lint, EveryDiagnosticCarriesAHexFingerprint) {
  std::mt19937_64 rng(31);
  const Policy p = test::random_policy(tiny3(), 12, rng);
  const LintReport report = lint(p);
  ASSERT_FALSE(report.diagnostics.empty());
  for (const Diagnostic& d : report.diagnostics) {
    ASSERT_EQ(d.fingerprint.size(), 16u) << d.check_id;
    for (const char c : d.fingerprint) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
    }
  }
}

TEST(Lint, FingerprintsSurviveRuleReordering) {
  // Fingerprints hash rule *texts*, not indices: moving an unrelated rule
  // around must not churn the baseline.
  const Schema s = tiny2();
  const Rule shadower = rule(s, Interval(0, 5), Interval(0, 7), kAccept);
  const Rule shadowed = rule(s, Interval(1, 2), Interval(1, 2), kDiscard);
  const Rule unrelated = rule(s, Interval(6, 7), Interval(0, 0), kDiscard);
  const Policy a(s, {shadower, shadowed, unrelated,
                     Rule::catch_all(s, kAccept)});
  const Policy b(s, {unrelated, shadower, shadowed,
                     Rule::catch_all(s, kAccept)});
  const LintReport ra = lint(a);
  const LintReport rb = lint(b);
  const Diagnostic* da = find_check(ra, "policy.shadowed-rule");
  const Diagnostic* db = find_check(rb, "policy.shadowed-rule");
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  EXPECT_NE(da->rule, db->rule);  // the index moved...
  EXPECT_EQ(da->fingerprint, db->fingerprint);  // ...the identity did not
}

TEST(Lint, RejectsNullInput) {
  EXPECT_THROW(LintEngine().run(LintInput{}, LintOptions{}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Determinism: byte-identical reports across executors and thread counts.

TEST(Lint, ReportsAreByteIdenticalAcrossThreadCounts) {
  std::mt19937_64 rng(57);
  const Policy p = test::random_policy(tiny3(), 24, rng);
  LintInput input;
  input.policy = &p;
  input.decisions = &default_decisions();
  const LintEngine engine;
  const LintReport serial = engine.run(input, {});
  ASSERT_FALSE(serial.diagnostics.empty());
  const std::string sarif = render_sarif(input, serial);
  const std::string json = render_json(input, serial);
  const std::string text = render_text(input, serial);
  EXPECT_TRUE(validate_sarif(sarif).ok);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Executor executor(threads);
    LintOptions options;
    options.run.executor = &executor;
    const LintReport parallel = engine.run(input, options);
    EXPECT_EQ(render_sarif(input, parallel), sarif) << threads;
    EXPECT_EQ(render_json(input, parallel), json) << threads;
    EXPECT_EQ(render_text(input, parallel), text) << threads;
  }
  // And across repeated runs: pure function of (input, report).
  EXPECT_EQ(render_sarif(input, engine.run(input, {})), sarif);
}

// ---------------------------------------------------------------------------
// SARIF structural validation.

TEST(Sarif, EmittedLogValidatesAndNamesTheTool) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     rule(s, Interval(1, 2), Interval(1, 2), kDiscard),
                     Rule::catch_all(s, kAccept)});
  LintInput input;
  input.policy = &p;
  input.decisions = &default_decisions();
  input.source_name = "example.fw";
  const LintReport report = LintEngine().run(input, {});
  const std::string sarif = render_sarif(input, report);
  const SarifValidation v = validate_sarif(sarif);
  EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("dfw-lint"), std::string::npos);
  EXPECT_NE(sarif.find("policy.shadowed-rule"), std::string::npos);
  EXPECT_NE(sarif.find("example.fw"), std::string::npos);
}

TEST(Sarif, ValidatorRejectsStructuralProblems) {
  EXPECT_FALSE(validate_sarif("not json at all").ok);
  EXPECT_FALSE(validate_sarif("{}").ok);
  EXPECT_FALSE(validate_sarif("[1,2,3]").ok);
  // Wrong version.
  EXPECT_FALSE(
      validate_sarif(
          R"({"version":"1.0.0","runs":[{"tool":{"driver":{"name":"x"}},"results":[]}]})")
          .ok);
  // Result references a rule missing from the catalog.
  const SarifValidation v = validate_sarif(
      R"({"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[{"id":"a.b"}]}},"results":[{"ruleId":"c.d","level":"error","message":{"text":"m"}}]}]})");
  EXPECT_FALSE(v.ok);
  ASSERT_FALSE(v.problems.empty());
  // Bad level.
  EXPECT_FALSE(
      validate_sarif(
          R"({"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[{"id":"a.b"}]}},"results":[{"ruleId":"a.b","level":"fatal","message":{"text":"m"}}]}]})")
          .ok);
  // Minimal valid log passes.
  EXPECT_TRUE(
      validate_sarif(
          R"({"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[{"id":"a.b"}]}},"results":[{"ruleId":"a.b","level":"note","message":{"text":"m"}}]}]})")
          .ok);
}

// ---------------------------------------------------------------------------
// Baseline suppression: gate on new findings only.

TEST(Baseline, RoundTripSuppressesEverythingItRecorded) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     rule(s, Interval(1, 2), Interval(1, 2), kDiscard),
                     Rule::catch_all(s, kAccept)});
  LintReport report = lint(p);
  ASSERT_FALSE(report.diagnostics.empty());
  const std::size_t total = report.diagnostics.size();
  std::string error;
  const auto baseline = parse_baseline(render_baseline(report), &error);
  ASSERT_TRUE(baseline.has_value()) << error;
  EXPECT_EQ(apply_baseline(report, *baseline), total);
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(Baseline, NewFindingSurvivesAnOldBaseline) {
  const Schema s = tiny2();
  const Rule shadower = rule(s, Interval(0, 5), Interval(0, 7), kAccept);
  const Rule shadowed = rule(s, Interval(1, 2), Interval(1, 2), kDiscard);
  const Policy before(s, {shadower, shadowed, Rule::catch_all(s, kAccept)});
  const auto baseline =
      parse_baseline(render_baseline(lint(before)), nullptr);
  ASSERT_TRUE(baseline.has_value());
  // Introduce a fresh finding: a redundant pair the baseline never saw.
  const Policy after(s, {shadower, shadowed,
                         rule(s, Interval(3, 4), Interval(3, 4), kAccept),
                         Rule::catch_all(s, kAccept)});
  LintReport report = lint(after);
  ASSERT_NE(find_check(report, "policy.redundant-pair"), nullptr);
  EXPECT_GT(apply_baseline(report, *baseline), 0u);
  // The old shadowing finding is suppressed; the new pair survives.
  EXPECT_EQ(find_check(report, "policy.shadowed-rule"), nullptr);
  EXPECT_NE(find_check(report, "policy.redundant-pair"), nullptr);
}

TEST(Baseline, ParserIsStrict) {
  std::string error;
  EXPECT_FALSE(parse_baseline("zzzz\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(parse_baseline("0123456789abcde\n", &error).has_value());
  EXPECT_FALSE(parse_baseline("0123456789ABCDEF\n", &error).has_value());
  EXPECT_FALSE(
      parse_baseline("0123456789abcdef trailing junk\n", &error).has_value());
  const auto ok = parse_baseline(
      "# comment\n\n0123456789abcdef  # policy.dead-rule\r\n"
      "fedcba9876543210\n0123456789abcdef\n",
      &error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(ok->fingerprints.size(), 2u);  // sorted, deduplicated
  EXPECT_LE(ok->fingerprints[0], ok->fingerprints[1]);
}

TEST(Baseline, EmptyOrWhitespaceOnlyMeansNoSuppressions) {
  // An empty baseline is the natural starting state ("nothing accepted
  // yet"), not a parse error — strictness is for malformed *content*.
  for (const char* text :
       {"", "\n", "   \n\t\n", " \t\v\f\n", "\v\v", "\f", "\r\n\r\n",
        "\xEF\xBB\xBF", "\xEF\xBB\xBF\n  \n", "# only a comment\n"}) {
    std::string error;
    const auto baseline = parse_baseline(text, &error);
    ASSERT_TRUE(baseline.has_value())
        << "rejected as '" << error << "': " << ::testing::PrintToString(text);
    EXPECT_TRUE(baseline->fingerprints.empty());
  }
  // The BOM is tolerated in front of real content too.
  const auto ok =
      parse_baseline("\xEF\xBB\xBF" "0123456789abcdef  # policy.dead-rule\n",
                     nullptr);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->fingerprints.size(), 1u);
}

// ---------------------------------------------------------------------------
// Governance: a hostile policy under a node budget yields a *marked*
// partial result quickly instead of an exponential blowup.

Policy adversarial_policy(std::size_t n) {
  const Schema s({{"a", Interval(0, 4095), FieldKind::kInteger},
                  {"b", Interval(0, 4095), FieldKind::kInteger},
                  {"c", Interval(0, 4095), FieldKind::kInteger}});
  std::vector<Rule> rules;
  rules.reserve(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Value lo = (i * 4) % 2048;
    const IntervalSet span(Interval(lo, lo + 2048));
    rules.emplace_back(s, std::vector<IntervalSet>{span, span, span},
                       i % 2 == 0 ? kAccept : kDiscard);
  }
  rules.push_back(Rule::catch_all(s, kDiscard));
  return Policy(s, std::move(rules));
}

TEST(LintGovern, ThousandRulePolicyUnderNodeBudgetIsMarkedPartial) {
  const Policy p = adversarial_policy(1000);
  RunContext::Config config;
  config.budgets.max_nodes = 5000;
  RunContext context(std::move(config));
  LintOptions options;
  options.run.context = &context;
  LintInput input;
  input.policy = &p;
  input.decisions = &default_decisions();
  const LintReport report = LintEngine().run(input, options);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.status, ErrorCode::kNodeBudgetExceeded);
  EXPECT_FALSE(report.message.empty());
  EXPECT_FALSE(report.passes_run.empty());
  // The partial report renders with the partial banner everywhere.
  EXPECT_NE(render_text(input, report).find("PARTIAL"), std::string::npos);
  const std::string sarif = render_sarif(input, report);
  EXPECT_NE(sarif.find("\"executionSuccessful\":false"), std::string::npos);
  EXPECT_TRUE(validate_sarif(sarif).ok);
  EXPECT_NE(render_json(input, report).find("NodeBudgetExceeded"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// CLI: the exit-code contract, in-process.

TEST(LintCli, CleanPolicyExitsZero) {
  const std::string path = write_temp(
      "lint_clean.fw", "discard sip=0.0.0.0/1\naccept sip=128.0.0.0/1\n");
  std::string out;
  std::string err;
  EXPECT_EQ(cli({path}, &out, &err), 0) << out << err;
  EXPECT_NE(out.find("0 error(s)"), std::string::npos);
}

TEST(LintCli, FindingsExitOne) {
  const std::string path = std::string(DFW_CORPUS_DIR) + "/native/basic.fw";
  std::string out;
  EXPECT_EQ(cli({path}, &out), 1);
  EXPECT_NE(out.find("["), std::string::npos);  // at least one [check-id]
}

TEST(LintCli, UsageErrorsExitTwo) {
  std::string err;
  EXPECT_EQ(cli({}, nullptr, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(cli({"--no-such-flag", "x"}, nullptr, &err), 2);
  EXPECT_EQ(cli({"--format=xml", "x"}, nullptr, &err), 2);
  EXPECT_EQ(cli({"--output=yaml", "x"}, nullptr, &err), 2);
  EXPECT_EQ(cli({"--threads=abc", "x"}, nullptr, &err), 2);
  EXPECT_EQ(cli({"a.fw", "b.fw"}, nullptr, &err), 2);
  EXPECT_EQ(cli({::testing::TempDir() + "definitely_missing.fw"}, nullptr,
                &err),
            2);
}

TEST(LintCli, MalformedAdapterInputsAreParseErrorsNotCrashes) {
  const std::string iptables =
      std::string(DFW_CORPUS_DIR) + "/lint/malformed.rules";
  std::string err;
  EXPECT_EQ(cli({"--format=iptables", iptables}, nullptr, &err), 2);
  EXPECT_NE(err.find("dfw_lint:"), std::string::npos);
  const std::string cisco = std::string(DFW_CORPUS_DIR) + "/lint/malformed.acl";
  EXPECT_EQ(cli({"--format=cisco", cisco}, nullptr, &err), 2);
  EXPECT_NE(err.find("dfw_lint:"), std::string::npos);
}

TEST(LintCli, AdapterFormatsLintEndToEnd) {
  const std::string iptables =
      std::string(DFW_CORPUS_DIR) + "/iptables/basic.rules";
  std::string out;
  EXPECT_EQ(cli({"--format=iptables", iptables}, &out), 1);
  const std::string cisco = std::string(DFW_CORPUS_DIR) + "/cisco/basic.acl";
  EXPECT_EQ(cli({"--format=cisco", "--acl=101", cisco}, &out), 1);
}

TEST(LintCli, SarifOutputValidatesViaTheCliValidator) {
  const std::string policy = std::string(DFW_CORPUS_DIR) + "/native/basic.fw";
  std::string sarif;
  EXPECT_EQ(cli({"--output=sarif", policy}, &sarif), 1);
  const std::string path = write_temp("lint_cli_report.sarif", sarif);
  std::string out;
  EXPECT_EQ(cli({"--validate-sarif=" + path}, &out), 0);
  EXPECT_NE(out.find("valid SARIF"), std::string::npos);
  const std::string bad = write_temp("lint_cli_bad.sarif", "{\"nope\":1}");
  std::string err;
  EXPECT_EQ(cli({"--validate-sarif=" + bad}, nullptr, &err), 1);
  EXPECT_FALSE(err.empty());
}

TEST(LintCli, BaselineWorkflowGatesOnNewFindingsOnly) {
  const std::string policy = std::string(DFW_CORPUS_DIR) + "/native/basic.fw";
  const std::string baseline = ::testing::TempDir() + "lint_cli_baseline.txt";
  std::string out;
  EXPECT_EQ(cli({"--write-baseline=" + baseline, policy}, &out), 0);
  EXPECT_NE(out.find("wrote"), std::string::npos);
  // Same policy, same baseline: everything suppressed, gate passes.
  EXPECT_EQ(cli({"--baseline=" + baseline, policy}, &out), 0);
  EXPECT_NE(out.find("suppressed by baseline"), std::string::npos);
  // A malformed baseline fails loudly rather than un-suppressing.
  const std::string bad = write_temp("lint_cli_baseline_bad.txt", "oops\n");
  std::string err;
  EXPECT_EQ(cli({"--baseline=" + bad, policy}, nullptr, &err), 2);
  EXPECT_NE(err.find("line 1"), std::string::npos);
}

TEST(LintCli, EmptyBaselineSuppressesNothingAndIsNotAUsageError) {
  // The fresh-project workflow: `touch baseline && dfw_lint --baseline=...`
  // must behave exactly like no baseline (exit 1 on findings, 0 when
  // clean), never exit 2. Whitespace-only and BOM-stamped variants ride
  // the same path.
  const std::string policy = std::string(DFW_CORPUS_DIR) + "/native/basic.fw";
  for (const auto& [name, text] :
       {std::pair<const char*, const char*>{"lint_cli_baseline_empty.txt", ""},
        {"lint_cli_baseline_ws.txt", " \t\v\f\n\v\f\n"},
        {"lint_cli_baseline_bom.txt", "\xEF\xBB\xBF"}}) {
    const std::string path = write_temp(name, text);
    std::string out;
    std::string err;
    EXPECT_EQ(cli({"--baseline=" + path, policy}, &out, &err), 1)
        << name << ": " << err;
    EXPECT_EQ(err.find("dfw_lint:"), std::string::npos) << name << ": " << err;
  }
  const std::string clean = write_temp(
      "lint_cli_clean_for_baseline.fw",
      "discard sip=0.0.0.0/1\naccept sip=128.0.0.0/1\n");
  const std::string empty = write_temp("lint_cli_baseline_empty2.txt", "");
  std::string out;
  EXPECT_EQ(cli({"--baseline=" + empty, clean}, &out), 0);
}

TEST(LintCli, BudgetedRunExitsOneWithPartialBanner) {
  const std::string path = write_temp("lint_cli_budget.fw", [] {
    std::string text;
    for (int i = 0; i < 200; ++i) {
      const int lo = (i * 16) % 2048;
      text += (i % 2 == 0 ? "accept" : "discard");
      text += " sport=" + std::to_string(lo) + "-" + std::to_string(lo + 2048);
      text += " dport=" + std::to_string(lo) + "-" + std::to_string(lo + 2048);
      text += "\n";
    }
    text += "discard\n";
    return text;
  }());
  std::string out;
  EXPECT_EQ(cli({"--max-nodes=2000", path}, &out), 1);
  EXPECT_NE(out.find("PARTIAL"), std::string::npos);
}

TEST(LintCli, ListPassesAndHelp) {
  std::string out;
  EXPECT_EQ(cli({"--list-passes"}, &out), 0);
  EXPECT_NE(out.find("dead-rules"), std::string::npos);
  EXPECT_NE(out.find("redundancy"), std::string::npos);
  EXPECT_EQ(cli({"--help"}, &out), 0);
  EXPECT_NE(out.find("exit codes"), std::string::npos);
}

TEST(LintCli, PassSelectionAndThreadsFlagsWork) {
  const std::string policy = std::string(DFW_CORPUS_DIR) + "/native/basic.fw";
  std::string serial;
  EXPECT_EQ(cli({"--output=json", "--passes=syntax-pairs", policy}, &serial),
            1);
  std::string threaded;
  EXPECT_EQ(cli({"--output=json", "--passes=syntax-pairs", "--threads=4",
                 policy},
                &threaded),
            1);
  EXPECT_EQ(serial, threaded);  // byte-identical across thread counts
}

}  // namespace
}  // namespace dfw::lint
