// Rule-level edit-script tests: LCS minimality on hand-built cases,
// structural invariants on random pairs, and the textual-vs-semantic
// contrast (reorders are edits with zero impact).

#include <gtest/gtest.h>

#include "impact/impact.hpp"
#include "impact/rule_diff.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;

Rule rule(const Schema& s, Interval x, Interval y, Decision d) {
  return Rule(s, {IntervalSet(x), IntervalSet(y)}, d);
}

Policy base() {
  const Schema s = tiny2();
  return Policy(s, {rule(s, Interval(0, 1), Interval(0, 7), kAccept),
                    rule(s, Interval(2, 3), Interval(0, 7), kDiscard),
                    rule(s, Interval(4, 5), Interval(0, 7), kAccept),
                    Rule::catch_all(s, kDiscard)});
}

TEST(RuleDiff, IdenticalPoliciesAllKeep) {
  const Policy p = base();
  const std::vector<RuleEdit> edits = rule_diff(p, p);
  ASSERT_EQ(edits.size(), p.size());
  for (std::size_t i = 0; i < edits.size(); ++i) {
    EXPECT_EQ(edits[i].kind, EditKind::kKeep);
    EXPECT_EQ(edits[i].before_index, i);
    EXPECT_EQ(edits[i].after_index, i);
  }
}

TEST(RuleDiff, SingleInsertionDetected) {
  const Policy before = base();
  Policy after = before;
  const Schema s = before.schema();
  after.insert(1, rule(s, Interval(6, 6), Interval(1, 1), kDiscard));
  const std::vector<RuleEdit> edits = rule_diff(before, after);
  const EditSummary summary = summarize_edits(edits);
  EXPECT_EQ(summary.inserted, 1u);
  EXPECT_EQ(summary.deleted, 0u);
  EXPECT_EQ(summary.kept, before.size());
}

TEST(RuleDiff, SingleDeletionDetected) {
  const Policy before = base();
  Policy after = before;
  after.erase(2);
  const EditSummary summary = summarize_edits(rule_diff(before, after));
  EXPECT_EQ(summary.deleted, 1u);
  EXPECT_EQ(summary.inserted, 0u);
}

TEST(RuleDiff, ModificationIsDeletePlusInsert) {
  const Policy before = base();
  Policy after = before;
  const Schema s = before.schema();
  after.replace(1, rule(s, Interval(2, 3), Interval(0, 7), kAccept));
  const EditSummary summary = summarize_edits(rule_diff(before, after));
  EXPECT_EQ(summary.deleted, 1u);
  EXPECT_EQ(summary.inserted, 1u);
  EXPECT_EQ(summary.kept, before.size() - 1);
}

TEST(RuleDiff, ReorderIsTwoEditsButMayHaveNoImpact) {
  const Policy before = base();
  Policy after = before;
  after.move(0, 2);  // rules 0..2 are disjoint: semantics unchanged
  const EditSummary summary = summarize_edits(rule_diff(before, after));
  EXPECT_EQ(summary.deleted + summary.inserted, 2u);
  EXPECT_TRUE(is_semantics_preserving(before, after));
}

TEST(RuleDiff, ScriptReconstructsBothSequences) {
  std::mt19937_64 rng(121);
  for (int trial = 0; trial < 20; ++trial) {
    const Policy before = test::random_policy(tiny2(), 6, rng);
    const Policy after = test::random_policy(tiny2(), 6, rng);
    const std::vector<RuleEdit> edits = rule_diff(before, after);
    // Replaying keeps+deletes yields `before`; keeps+inserts yields
    // `after`, each in order.
    std::size_t bi = 0;
    std::size_t ai = 0;
    for (const RuleEdit& e : edits) {
      switch (e.kind) {
        case EditKind::kKeep:
          EXPECT_EQ(e.before_index, bi++);
          EXPECT_EQ(e.after_index, ai++);
          EXPECT_EQ(before.rule(e.before_index), after.rule(e.after_index));
          break;
        case EditKind::kDelete:
          EXPECT_EQ(e.before_index, bi++);
          break;
        case EditKind::kInsert:
          EXPECT_EQ(e.after_index, ai++);
          break;
      }
    }
    EXPECT_EQ(bi, before.size());
    EXPECT_EQ(ai, after.size());
  }
}

TEST(RuleDiff, EditCountIsMinimal) {
  std::mt19937_64 rng(122);
  for (int trial = 0; trial < 15; ++trial) {
    const Policy before = test::random_policy(tiny2(), 5, rng);
    Policy after = before;
    after.erase(1);
    const EditSummary summary = summarize_edits(rule_diff(before, after));
    // One deletion suffices; LCS must not do worse.
    EXPECT_EQ(summary.deleted, 1u);
    EXPECT_EQ(summary.inserted, 0u);
  }
}

TEST(RuleDiff, RejectsSchemaMismatch) {
  const Schema other({{"z", Interval(0, 3), FieldKind::kInteger}});
  const Policy a = base();
  const Policy b(other, {Rule::catch_all(other, kAccept)});
  EXPECT_THROW(rule_diff(a, b), std::invalid_argument);
}

TEST(RuleDiff, FormatsUnifiedStyle) {
  const Policy before = base();
  Policy after = before;
  const Schema s = before.schema();
  after.insert(0, rule(s, Interval(7, 7), Interval(7, 7), kDiscard));
  after.erase(2);
  const std::string text = format_edit_script(
      before, after, default_decisions(), rule_diff(before, after));
  EXPECT_NE(text.find("rule edits: 1 inserted, 1 deleted"),
            std::string::npos);
  EXPECT_NE(text.find("\n+ "), std::string::npos);
  EXPECT_NE(text.find("\n- "), std::string::npos);
}

}  // namespace
}  // namespace dfw
