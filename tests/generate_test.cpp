// Firewall generation tests (resolution method 1's engine): generated
// policies must be comprehensive, first-match equivalent to the source
// FDD, and compact relative to the raw path enumeration.

#include <gtest/gtest.h>

#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/reduce.hpp"
#include "gen/generate.hpp"
#include "gen/redundancy.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

TEST(Generate, ConstantFddYieldsSingleCatchAll) {
  const Fdd fdd = Fdd::constant(tiny2(), kDiscard);
  const Policy p = generate_policy(fdd);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.last_rule_is_catch_all());
  EXPECT_EQ(p.rule(0).decision(), kDiscard);
}

TEST(Generate, RoundTripPreservesSemantics) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const Policy original = test::random_policy(tiny3(), 6, rng);
    const Fdd fdd = build_fdd(original);
    const Policy regenerated = generate_policy(fdd);
    EXPECT_TRUE(regenerated.last_rule_is_catch_all());
    for (const Packet& pkt : test::all_packets(tiny3())) {
      EXPECT_EQ(regenerated.evaluate(pkt), original.evaluate(pkt));
    }
  }
}

TEST(Generate, WithoutReductionAlsoCorrect) {
  std::mt19937_64 rng(32);
  const Policy original = test::random_policy(tiny3(), 5, rng);
  const Fdd fdd = build_fdd(original);
  GenerateOptions no_reduce;
  no_reduce.reduce_first = false;
  const Policy regenerated = generate_policy(fdd, no_reduce);
  for (const Packet& pkt : test::all_packets(tiny3())) {
    EXPECT_EQ(regenerated.evaluate(pkt), original.evaluate(pkt));
  }
}

TEST(Generate, DefaultBranchMakesOutputCompact) {
  // A policy whose FDD has one big default region. The raw generator may
  // emit one intermediate shadow rule ("x=3 -> accept" before the final
  // catch-all); redundancy removal then reaches the 2-rule minimum — the
  // full method-1 pipeline of Section 6.1.
  const Schema schema = tiny2();
  const Policy p(
      schema,
      {Rule(schema, {IntervalSet(Interval(3, 3)), IntervalSet(Interval(3, 3))},
            kDiscard),
       Rule::catch_all(schema, kAccept)});
  const Fdd fdd = build_fdd(p);
  const Policy compact = generate_policy(fdd);
  EXPECT_LE(compact.size(), 3u);
  const Policy minimal = remove_redundant(compact);
  EXPECT_LE(minimal.size(), 3u);
  EXPECT_TRUE(equivalent(minimal, p));
}

TEST(Generate, SingleFieldPolicyRegeneratesMinimally) {
  // "discard y=3; accept" round-trips to exactly its 2-rule minimal form:
  // reduction splices out the untouched x field and the default branch
  // covers the accept region.
  const Schema schema = tiny2();
  const Policy p(
      schema,
      {Rule(schema, {IntervalSet(Interval(0, 7)), IntervalSet(Interval(3, 3))},
            kDiscard),
       Rule::catch_all(schema, kAccept)});
  const Policy regenerated = generate_policy(build_fdd(p));
  EXPECT_EQ(regenerated.size(), 2u);
  EXPECT_TRUE(equivalent(regenerated, p));
}

TEST(Generate, GeneratedRuleCountNeverExceedsPathCount) {
  std::mt19937_64 rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const Policy original = test::random_policy(tiny3(), 6, rng);
    Fdd fdd = build_fdd(original);
    reduce(fdd);
    GenerateOptions no_reduce;
    no_reduce.reduce_first = false;
    const Policy regenerated = generate_policy(fdd, no_reduce);
    EXPECT_LE(regenerated.size(), fdd.path_count());
  }
}

TEST(GenerateDisjoint, EquivalentAndDisjoint) {
  std::mt19937_64 rng(34);
  for (int trial = 0; trial < 15; ++trial) {
    const Policy original = test::random_policy(tiny3(), 6, rng);
    const Fdd fdd = build_fdd(original);
    const Policy carved = generate_disjoint_policy(fdd, kDiscard);
    EXPECT_TRUE(carved.last_rule_is_catch_all());
    EXPECT_EQ(carved.rules().back().decision(), kDiscard);
    for (const Packet& pkt : test::all_packets(tiny3())) {
      EXPECT_EQ(carved.evaluate(pkt), original.evaluate(pkt));
    }
    // Non-default rules are pairwise disjoint: no packet matches two.
    for (const Packet& pkt : test::all_packets(tiny3())) {
      int hits = 0;
      for (std::size_t i = 0; i + 1 < carved.size(); ++i) {
        hits += carved.rule(i).matches(pkt) ? 1 : 0;
      }
      EXPECT_LE(hits, 1);
    }
  }
}

TEST(GenerateDisjoint, OrderOfCarveOutsIsImmaterial) {
  std::mt19937_64 rng(35);
  const Policy original = test::random_policy(tiny3(), 5, rng);
  Policy carved = generate_disjoint_policy(build_fdd(original), kAccept);
  if (carved.size() > 2) {
    carved.move(0, carved.size() - 2);  // shuffle a carve-out
  }
  for (const Packet& pkt : test::all_packets(tiny3())) {
    EXPECT_EQ(carved.evaluate(pkt), original.evaluate(pkt));
  }
}

TEST(GenerateDisjoint, FallbackChoiceTradesRuleCount) {
  // A mostly-accepting policy yields few carve-outs with fallback=accept
  // and many with fallback=discard.
  const Schema schema = tiny2();
  const Policy p(
      schema,
      {Rule(schema, {IntervalSet(Interval(3, 3)), IntervalSet(Interval(3, 3))},
            kDiscard),
       Rule::catch_all(schema, kAccept)});
  const Fdd fdd = build_fdd(p);
  const Policy few = generate_disjoint_policy(fdd, kAccept);
  const Policy many = generate_disjoint_policy(fdd, kDiscard);
  EXPECT_LT(few.size(), many.size());
  EXPECT_TRUE(equivalent(few, many));
}

}  // namespace
}  // namespace dfw
