// Tests for the hash-consed FDD arena (fdd/arena.hpp): interning
// invariants, canonical-by-construction equality with the tree pipeline's
// reduce(), lossless tree bridges, memoised semantic operations, and the
// randomized equivalence harness the arena's correctness argument rests
// on — arena and tree pipelines must be indistinguishable from outside.

#include "fdd/arena.hpp"

#include <gtest/gtest.h>

#include <random>

#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/reduce.hpp"
#include "fdd/shape.hpp"
#include "gen/generate.hpp"
#include "synth/synth.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

CompareOptions arena_options() {
  CompareOptions o;
  o.use_arena = true;
  return o;
}

CompareOptions tree_options() {
  CompareOptions o;
  o.use_arena = false;
  return o;
}

ConstructOptions tree_construct() {
  ConstructOptions o;
  o.use_arena = false;
  return o;
}

Packet random_packet(const Schema& schema, std::mt19937_64& rng) {
  Packet p(schema.field_count());
  for (std::size_t f = 0; f < schema.field_count(); ++f) {
    std::uniform_int_distribution<Value> pick(schema.domain(f).lo(),
                                              schema.domain(f).hi());
    p[f] = pick(rng);
  }
  return p;
}

TEST(FddArena, TerminalsAreInterned) {
  FddArena arena(test::tiny2());
  EXPECT_EQ(arena.terminal(kAccept), arena.terminal(kAccept));
  EXPECT_EQ(arena.terminal(kDiscard), arena.terminal(kDiscard));
  EXPECT_NE(arena.terminal(kAccept), arena.terminal(kDiscard));
  EXPECT_EQ(arena.unique_node_count(), 2u);
}

TEST(FddArena, LabelsAreInterned) {
  FddArena arena(test::tiny2());
  const IntervalSet a({Interval(0, 3)});
  const IntervalSet b({Interval(0, 3), Interval(5, 7)});
  EXPECT_EQ(arena.intern(a), arena.intern(a));
  EXPECT_NE(arena.intern(a), arena.intern(b));
  EXPECT_EQ(arena.label(arena.intern(b)), b);
  EXPECT_EQ(arena.stats().unique_labels, 2u);
}

TEST(FddArena, StructurallyIdenticalNodesShareAnId) {
  FddArena arena(test::tiny2());
  const ArenaNodeId acc = arena.terminal(kAccept);
  const ArenaNodeId dis = arena.terminal(kDiscard);
  const ArenaLabelId lo = arena.intern(IntervalSet(Interval(0, 3)));
  const ArenaLabelId hi = arena.intern(IntervalSet(Interval(4, 7)));
  const ArenaNodeId n1 = arena.internal(1, {{lo, acc}, {hi, dis}});
  const ArenaNodeId n2 = arena.internal(1, {{hi, dis}, {lo, acc}});
  EXPECT_EQ(n1, n2);  // edge order is normalised before interning
  const ArenaNodeId n3 = arena.internal(1, {{lo, dis}, {hi, acc}});
  EXPECT_NE(n1, n3);
}

TEST(FddArena, CanonicalMergesAndSplices) {
  const Schema schema = test::tiny2();
  FddArena arena(schema);
  const ArenaNodeId acc = arena.terminal(kAccept);
  const ArenaLabelId lo = arena.intern(IntervalSet(Interval(0, 3)));
  const ArenaLabelId hi = arena.intern(IntervalSet(Interval(4, 7)));
  // Both edges reach the same child: labels merge to the full domain, the
  // resulting single-edge node is spliced away.
  EXPECT_EQ(arena.canonical(1, {{lo, acc}, {hi, acc}}), acc);
  // A genuine split is kept.
  const ArenaNodeId dis = arena.terminal(kDiscard);
  const ArenaNodeId split = arena.canonical(1, {{lo, acc}, {hi, dis}});
  EXPECT_FALSE(arena.is_terminal(split));
  EXPECT_EQ(arena.edges(split).size(), 2u);
}

TEST(FddArena, BuildReducedMatchesTreeReducedPipeline) {
  // Canonical-by-construction must land on the same diagram as the tree
  // pipeline's interleaved reduce: the reduced ordered FDD is unique.
  std::mt19937_64 rng(7);
  for (int round = 0; round < 40; ++round) {
    const Schema schema = round % 2 == 0 ? test::tiny2() : test::tiny3();
    const Policy policy = test::random_policy(schema, 8, rng);
    const Fdd tree = build_reduced_fdd(policy, tree_construct());
    FddArena arena(schema);
    const ArenaNodeId root = arena.build_reduced(policy);
    const Fdd expanded = arena.to_fdd(root);
    EXPECT_TRUE(structurally_equal(expanded, tree));
    EXPECT_TRUE(test::fdd_matches_policy(expanded, policy));
    arena.validate(root);
    for (const Packet& p : test::all_packets(schema)) {
      EXPECT_EQ(arena.evaluate(root, p), policy.evaluate(p));
    }
  }
}

TEST(FddArena, DefaultBuildReducedFddUsesArenaAndMatchesTreePath) {
  std::mt19937_64 rng(11);
  for (int round = 0; round < 10; ++round) {
    const Policy policy = test::random_policy(test::tiny3(), 10, rng);
    EXPECT_TRUE(structurally_equal(build_reduced_fdd(policy),
                                   build_reduced_fdd(policy,
                                                     tree_construct())));
  }
}

TEST(FddArena, TreeRoundTripIsLossless) {
  std::mt19937_64 rng(3);
  for (int round = 0; round < 20; ++round) {
    const Policy policy = test::random_policy(test::tiny2(), 6, rng);
    const Fdd tree = build_reduced_fdd(policy, tree_construct());
    FddArena arena(tree.schema());
    const ArenaNodeId root = arena.from_tree(tree.root());
    EXPECT_TRUE(structurally_equal(arena.to_fdd(root), tree));
  }
}

TEST(FddArena, FromTreeCanonicalIsReduce) {
  std::mt19937_64 rng(5);
  for (int round = 0; round < 20; ++round) {
    const Policy policy = test::random_policy(test::tiny3(), 8, rng);
    Fdd reduced = build_fdd(policy);
    FddArena arena(reduced.schema());
    const ArenaNodeId root = arena.from_tree_canonical(reduced.root());
    reduce(reduced);
    EXPECT_TRUE(structurally_equal(arena.to_fdd(root), reduced));
  }
}

TEST(FddArena, AppendIsCopyOnWrite) {
  // Appending never mutates existing ids: the old root keeps evaluating
  // the old policy after the append.
  const Schema schema = test::tiny2();
  std::mt19937_64 rng(13);
  const Policy policy = test::random_policy(schema, 6, rng);
  FddArena arena(schema);
  const ArenaNodeId root = arena.build_reduced(policy);
  std::vector<IntervalSet> conjuncts{IntervalSet(Interval(1, 2)),
                                     IntervalSet(Interval(0, 7))};
  // The appended rule loses to every earlier rule (first-match), so the
  // new root is the same function; the old root must be untouched too.
  const ArenaNodeId appended = arena.append_rule(
      root, Rule(schema, conjuncts, kAccept));
  for (const Packet& p : test::all_packets(schema)) {
    EXPECT_EQ(arena.evaluate(root, p), policy.evaluate(p));
    EXPECT_EQ(arena.evaluate(appended, p), policy.evaluate(p));
  }
}

TEST(FddArena, ShapePairProducesSemiIsomorphicEquivalents) {
  std::mt19937_64 rng(17);
  for (int round = 0; round < 20; ++round) {
    const Schema schema = test::tiny3();
    const Policy pa = test::random_policy(schema, 7, rng);
    const Policy pb = test::random_policy(schema, 7, rng);
    FddArena arena(schema);
    const ArenaNodeId a = arena.build_reduced(pa);
    const ArenaNodeId b = arena.build_reduced(pb);
    const auto [sa, sb] = arena.shape_pair(a, b);
    EXPECT_TRUE(arena.semi_isomorphic(sa, sb));
    arena.validate(sa);
    arena.validate(sb);
    for (const Packet& p : test::all_packets(schema)) {
      EXPECT_EQ(arena.evaluate(sa, p), pa.evaluate(p));
      EXPECT_EQ(arena.evaluate(sb, p), pb.evaluate(p));
    }
    // Shaping a diagram against itself is the O(1) identity.
    const auto [ta, tb] = arena.shape_pair(a, a);
    EXPECT_EQ(ta, a);
    EXPECT_EQ(tb, a);
  }
}

TEST(FddArena, ValidateMatchesTreeMessages) {
  const Schema schema = test::tiny2();
  FddArena arena(schema);
  // A partial diagram: field 0 only covers [0,3].
  const ArenaNodeId acc = arena.terminal(kAccept);
  const ArenaNodeId partial = arena.internal(
      0, {{arena.intern(IntervalSet(Interval(0, 3))), acc}});
  arena.validate(partial, /*require_complete=*/false);
  try {
    arena.validate(partial);
    FAIL() << "expected completeness violation";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "FDD: completeness violated at field x");
  }
}

// -- Randomized equivalence harness -----------------------------------------
//
// ~200 synthetic five-tuple policies (100 base/perturbed pairs): the arena
// pipeline and the tree pipeline must agree decision-for-decision under
// packet sampling and produce byte-identical discrepancy reports.

TEST(FddArenaEquivalence, PairwiseDiscrepanciesMatchTreePipeline) {
  Rng rng(2026);
  std::mt19937_64 packet_rng(42);
  for (int round = 0; round < 100; ++round) {
    SynthConfig config;
    config.num_rules = 20 + static_cast<std::size_t>(round % 30);
    const Policy a = synth_policy(config, rng);
    const Policy b = perturb_policy(a, 20.0, rng);
    const std::vector<Discrepancy> via_arena =
        discrepancies(a, b, arena_options());
    const std::vector<Discrepancy> via_tree =
        discrepancies(a, b, tree_options());
    ASSERT_EQ(via_arena, via_tree) << "round " << round;

    // Decision-for-decision agreement under packet sampling.
    FddArena arena(a.schema());
    const ArenaNodeId root = arena.build_reduced(a);
    const Fdd tree = build_reduced_fdd(a, tree_construct());
    for (int s = 0; s < 20; ++s) {
      const Packet p = random_packet(a.schema(), packet_rng);
      const Decision expected = a.evaluate(p);
      EXPECT_EQ(arena.evaluate(root, p), expected);
      EXPECT_EQ(tree.evaluate(p), expected);
    }
  }
}

TEST(FddArenaEquivalence, NWayDiscrepanciesMatchTreePipeline) {
  Rng rng(99);
  for (int round = 0; round < 25; ++round) {
    SynthConfig config;
    config.num_rules = 25;
    const Policy a = synth_policy(config, rng);
    std::vector<Policy> teams{a, perturb_policy(a, 15.0, rng),
                              perturb_policy(a, 30.0, rng)};
    EXPECT_EQ(discrepancies_many(teams, arena_options()),
              discrepancies_many(teams, tree_options()))
        << "round " << round;
  }
}

TEST(FddArenaEquivalence, GeneratedPoliciesStayEquivalent) {
  // gen off the DAG must produce exactly the tree generator's policy: the
  // election metric and tie-breaks are the same, memoisation only changes
  // the cost of computing them.
  std::mt19937_64 rng(23);
  for (int round = 0; round < 20; ++round) {
    const Schema schema = test::tiny3();
    const Policy policy = test::random_policy(schema, 9, rng);
    const Fdd fdd = build_reduced_fdd(policy, tree_construct());
    const Policy generated = generate_policy(fdd);
    for (const Packet& p : test::all_packets(schema)) {
      EXPECT_EQ(generated.evaluate(p), policy.evaluate(p));
    }
  }
}

TEST(FddArenaEquivalence, StatsAreDeterministicAcrossRuns) {
  Rng rng_a(7);
  Rng rng_b(7);
  SynthConfig config;
  config.num_rules = 60;
  const Policy pa = synth_policy(config, rng_a);
  const Policy pb = synth_policy(config, rng_b);

  const auto run = [](const Policy& p) {
    FddArena arena(p.schema());
    const ArenaNodeId root = arena.build_reduced(p);
    arena.validate(root);
    return arena.stats();
  };
  const ArenaStats first = run(pa);
  const ArenaStats second = run(pb);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.unique_nodes, 0u);
  EXPECT_FALSE(to_string(first).empty());
}

TEST(FddArenaEquivalence, SharingShrinksTheDiagram) {
  // The whole point: on a nontrivial policy the hash-consed diagram holds
  // far fewer nodes than its tree expansion.
  Rng rng(1234);
  SynthConfig config;
  config.num_rules = 300;
  const Policy policy = synth_policy(config, rng);
  FddArena arena(policy.schema());
  const ArenaNodeId root = arena.build_reduced(policy);
  EXPECT_LT(arena.reachable_node_count(root),
            arena.expanded_node_count(root));
}

}  // namespace
}  // namespace dfw
