// Stateful-firewall model tests (companion ref [11]): return traffic
// admitted via state, non-established traffic filtered by the core,
// FIFO eviction, and diverse-design comparison of stateful cores.

#include <gtest/gtest.h>

#include "fdd/compare.hpp"
#include "fw/parser.hpp"
#include "net/ipv4.hpp"
#include "stateful/stateful.hpp"

namespace dfw {
namespace {

const Schema kSchema = five_tuple_schema();
const DecisionSet& kDecisions = default_decisions();

// Outbound-only policy: inside (10/8) may open TCP connections to
// anywhere; nothing else enters.
StatefulFirewall outbound_only(std::size_t capacity = 4096) {
  Policy core = parse_policy(kSchema, kDecisions,
                             "accept sip=10.0.0.0/8 proto=tcp\n"
                             "discard\n");
  return StatefulFirewall(std::move(core), {true, false}, capacity);
}

Packet outbound(Value sport = 40000) {
  return {*parse_ipv4("10.1.2.3"), *parse_ipv4("93.184.216.34"), sport, 443,
          6};
}

Packet reply(Value dport = 40000) {
  return {*parse_ipv4("93.184.216.34"), *parse_ipv4("10.1.2.3"), 443, dport,
          6};
}

TEST(Stateful, EstablishedReturnTrafficIsAccepted) {
  StatefulFirewall fw = outbound_only();
  // The naked reply is discarded by the core.
  EXPECT_EQ(fw.process(reply()).decision, kDiscard);
  // The outbound packet opens state...
  const StatefulVerdict out = fw.process(outbound());
  EXPECT_EQ(out.decision, kAccept);
  EXPECT_TRUE(out.tracked_new);
  EXPECT_FALSE(out.via_state);
  EXPECT_EQ(fw.state_size(), 1u);
  // ...and now the reply sails through the state section.
  const StatefulVerdict in = fw.process(reply());
  EXPECT_EQ(in.decision, kAccept);
  EXPECT_TRUE(in.via_state);
  EXPECT_FALSE(in.tracked_new);
}

TEST(Stateful, SameDirectionRetransmissionUsesState) {
  StatefulFirewall fw = outbound_only();
  fw.process(outbound());
  const StatefulVerdict again = fw.process(outbound());
  EXPECT_TRUE(again.via_state);
  EXPECT_EQ(fw.state_size(), 1u);  // no duplicate entry
}

TEST(Stateful, UnrelatedReplyIsNotAdmitted) {
  StatefulFirewall fw = outbound_only();
  fw.process(outbound(40000));
  // A reply to a *different* client port is not part of the flow.
  EXPECT_EQ(fw.process(reply(40001)).decision, kDiscard);
}

TEST(Stateful, UntrackedAcceptInsertsNoState) {
  Policy core = parse_policy(kSchema, kDecisions,
                             "accept sip=10.0.0.0/8 proto=tcp\n"
                             "discard\n");
  StatefulFirewall fw(std::move(core), {false, false});
  EXPECT_EQ(fw.process(outbound()).decision, kAccept);
  EXPECT_EQ(fw.state_size(), 0u);
  EXPECT_EQ(fw.process(reply()).decision, kDiscard);
}

TEST(Stateful, FifoEvictionBoundsTheTable) {
  StatefulFirewall fw = outbound_only(/*capacity=*/2);
  fw.process(outbound(40000));
  fw.process(outbound(40001));
  fw.process(outbound(40002));  // evicts the 40000 flow
  EXPECT_EQ(fw.state_size(), 2u);
  EXPECT_EQ(fw.process(reply(40000)).decision, kDiscard);
  EXPECT_EQ(fw.process(reply(40002)).decision, kAccept);
}

TEST(Stateful, ClearStateDropsEstablishedFlows) {
  StatefulFirewall fw = outbound_only();
  fw.process(outbound());
  fw.clear_state();
  EXPECT_EQ(fw.state_size(), 0u);
  EXPECT_EQ(fw.process(reply()).decision, kDiscard);
}

TEST(Stateful, FlowHelpers) {
  const Packet p = outbound(1234);
  const Flow f = Flow::of(p);
  EXPECT_EQ(f.sport, 1234u);
  EXPECT_EQ(f.reversed().dport, 1234u);
  EXPECT_EQ(f.reversed().reversed(), f);
}

TEST(Stateful, ConstructorValidation) {
  Policy core = parse_policy(kSchema, kDecisions, "discard\n");
  EXPECT_THROW(StatefulFirewall(core, {true, false}),
               std::invalid_argument);  // flag arity
  EXPECT_THROW(StatefulFirewall(core, {true}, 0),
               std::invalid_argument);  // zero capacity
  const Schema tiny({{"x", Interval(0, 7), FieldKind::kInteger}});
  EXPECT_THROW(
      StatefulFirewall(Policy(tiny, {Rule::catch_all(tiny, kAccept)}),
                       {true}),
      std::invalid_argument);  // wrong schema
}

// Diverse design applies to the stateless cores: two teams writing
// "outbound-only" differently are compared exactly as in the stateless
// case.
TEST(Stateful, CoresCompareThroughThePipeline) {
  const StatefulFirewall team_a = outbound_only();
  Policy team_b_core = parse_policy(kSchema, kDecisions,
                                    "accept sip=10.0.0.0/8\n"  // forgot tcp
                                    "discard\n");
  const StatefulFirewall team_b(std::move(team_b_core), {true, false});
  const std::vector<Discrepancy> diffs =
      discrepancies(team_a.core(), team_b.core());
  ASSERT_FALSE(diffs.empty());
  for (const Discrepancy& d : diffs) {
    // Exactly the non-TCP outbound traffic separates the designs.
    EXPECT_FALSE(d.conjuncts[4].contains(6));
    EXPECT_EQ(d.decisions[0], kDiscard);
    EXPECT_EQ(d.decisions[1], kAccept);
  }
}

}  // namespace
}  // namespace dfw
