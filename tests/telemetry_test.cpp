// Tests for the continuous telemetry plane: the Prometheus/JSONL
// exporters and their structural validators (obs/export.hpp), the
// parse-back helpers that recompute quantiles offline, the ServeCore
// periodic reporter (interval ticks, rolling window, fault-counter
// overlay, quiesced shutdown), and the dfw_bench_diff regression gate's
// exit-code contract — ending in the swap-storm acceptance run: exports
// produced under concurrent swaps must validate, and the exported p99
// must match offline recomputation from the same record.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_diff.hpp"
#include "engine/trace.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/names.hpp"
#include "rt/fault.hpp"
#include "serve/serve.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

Policy synth(std::size_t rules, std::uint64_t seed) {
  SynthConfig config;
  config.num_rules = rules;
  Rng rng(seed);
  return synth_policy(config, rng);
}

std::vector<Packet> trace_for(const Policy& policy, std::size_t n,
                              std::uint64_t seed) {
  Rng rng(seed);
  return synth_trace(policy, n, rng);
}

// -- Prometheus exporter -----------------------------------------------------

TEST(MetricsExporterTest, PrometheusGoldenOutput) {
  MetricsRegistry registry;
  registry.counter("serve.swap.count").add(2);
  registry.histogram("h").record(0);
  registry.histogram("h").record(1);
  registry.histogram("h").record(1000);

  const MetricsExporter exporter;
  // The legacy zero and v==1 buckets share le=0 and coalesce; 1000 lands
  // in [512, 1024).
  EXPECT_EQ(exporter.prometheus(registry.snapshot()),
            "# TYPE dfw_serve_swap_count counter\n"
            "dfw_serve_swap_count 2\n"
            "# TYPE dfw_h histogram\n"
            "dfw_h_bucket{le=\"0\"} 2\n"
            "dfw_h_bucket{le=\"1023\"} 3\n"
            "dfw_h_bucket{le=\"+Inf\"} 3\n"
            "dfw_h_sum 1001\n"
            "dfw_h_count 3\n");
}

TEST(MetricsExporterTest, PrometheusOutputValidatesAtEveryResolution) {
  for (const std::uint32_t subbits : {0u, 2u, 6u}) {
    MetricsRegistry registry(subbits);
    registry.counter("a.count").add(7);
    registry.counter("b.count");
    for (std::uint64_t v = 0; v < 2000; v += 7) {
      registry.histogram("lat.ns").record(v * v);
    }
    registry.histogram("empty.ns");
    const MetricsExporter exporter;
    const std::string text = exporter.prometheus(registry.snapshot());
    const PromValidation v = validate_prometheus(text);
    EXPECT_TRUE(v.ok) << "subbits " << subbits << ": " << v.error;
    EXPECT_EQ(v.family_types.at("dfw_lat_ns"), "histogram");
    EXPECT_EQ(v.family_types.at("dfw_a_count"), "counter");
  }
}

TEST(MetricsExporterTest, PromValidatorRejectsStructuralBreaks) {
  // A sample before its TYPE declaration.
  EXPECT_FALSE(validate_prometheus("dfw_x 1\n# TYPE dfw_x counter\n").ok);
  // Decreasing cumulative buckets.
  EXPECT_FALSE(validate_prometheus("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 5\n"
                                   "h_bucket{le=\"2\"} 3\n"
                                   "h_bucket{le=\"+Inf\"} 5\n"
                                   "h_sum 9\nh_count 5\n")
                   .ok);
  // +Inf bucket disagrees with _count.
  EXPECT_FALSE(validate_prometheus("# TYPE h histogram\n"
                                   "h_bucket{le=\"+Inf\"} 4\n"
                                   "h_sum 9\nh_count 5\n")
                   .ok);
  // Missing +Inf entirely.
  EXPECT_FALSE(validate_prometheus("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 1\n"
                                   "h_sum 1\nh_count 1\n")
                   .ok);
  // Duplicate sample.
  EXPECT_FALSE(
      validate_prometheus("# TYPE c counter\nc 1\nc 2\n").ok);
  // Illegal family name.
  EXPECT_FALSE(validate_prometheus("# TYPE 9bad counter\n9bad 1\n").ok);
  // A valid document still validates.
  EXPECT_TRUE(validate_prometheus("# TYPE c counter\nc 1\n").ok);
}

// -- JSONL exporter ----------------------------------------------------------

TEST(MetricsExporterTest, JsonlSeriesValidatesAndSeqMustIncrease) {
  MetricsRegistry registry(3);
  registry.counter("serve.batch.count").add(4);
  for (const std::uint64_t v : {10ull, 200ull, 3000ull, 40000ull}) {
    registry.histogram(names::kServeBatchNs).record(v);
  }
  const MetricsExporter exporter;
  const MetricsSnapshot snap = registry.snapshot();

  std::string series = exporter.jsonl(snap, 1, 10);
  series += exporter.jsonl(snap, 2, 20);
  series += exporter.jsonl(snap, 3, 30);
  const JsonlValidation ok = validate_metrics_jsonl(series);
  EXPECT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.records, 3u);

  // Repeated seq breaks the series.
  std::string stuck = exporter.jsonl(snap, 5, 10);
  stuck += exporter.jsonl(snap, 5, 20);
  EXPECT_FALSE(validate_metrics_jsonl(stuck).ok);

  // Wrong schema marker, disordered quantiles, empty file.
  EXPECT_FALSE(validate_metrics_jsonl("{\"schema\": \"nope\"}\n").ok);
  EXPECT_FALSE(
      validate_metrics_jsonl(
          "{\"schema\": \"dfw-metrics-v1\", \"seq\": 1, \"uptime_ms\": 0, "
          "\"counters\": {}, \"histograms\": {\"h\": {\"count\": 1, "
          "\"sum\": 5, \"buckets\": [[4, 1]], \"p50\": 9, \"p90\": 5, "
          "\"p99\": 5, \"p999\": 5}}}\n")
          .ok);
  EXPECT_FALSE(validate_metrics_jsonl("").ok);
}

TEST(MetricsExporterTest, SnapshotsRoundTripThroughJson) {
  // The registry's own to_json shape (no subbits field -> 0).
  MetricsRegistry legacy;
  legacy.counter("c").add(11);
  legacy.histogram("h").record(99);
  const MetricsSnapshot snap = legacy.snapshot();
  std::string error;
  auto parsed = json::parse(snap.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto back = metrics_from_json(*parsed, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, snap);

  // The richer JSONL shape keeps the resolution and the quantiles are
  // recomputable from the parsed buckets.
  MetricsRegistry fine(4);
  for (std::uint64_t v = 1; v < 100000; v *= 3) {
    fine.histogram("h").record(v);
  }
  const MetricsSnapshot fine_snap = fine.snapshot();
  const MetricsExporter exporter;
  const std::string line = exporter.jsonl(fine_snap, 1, 0);
  auto doc = json::parse(line.substr(0, line.size() - 1), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto fine_back = metrics_from_json(*doc, &error);
  ASSERT_TRUE(fine_back.has_value()) << error;
  EXPECT_EQ(*fine_back, fine_snap);
  EXPECT_EQ(fine_back->histograms.at("h").subbits, 4u);
  const json::Value* h = doc->find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("p99")->number,
                   fine_back->histograms.at("h").quantile(0.99));
}

TEST(MetricsExporterTest, ParseBackRejectsMalformedHistograms) {
  std::string error;
  const auto bad = [&](const char* text) {
    auto doc = json::parse(text, &error);
    EXPECT_TRUE(doc.has_value()) << error;
    return !histogram_from_json(*doc, &error).has_value();
  };
  EXPECT_TRUE(bad("{\"sum\": 1, \"buckets\": []}"));  // no count
  EXPECT_TRUE(bad("{\"count\": 1, \"sum\": 1}"));     // no buckets
  // Bucket counts must sum to count.
  EXPECT_TRUE(bad("{\"count\": 3, \"sum\": 1, \"buckets\": [[0, 1]]}"));
  // Bounds must be non-decreasing.
  EXPECT_TRUE(bad(
      "{\"count\": 2, \"sum\": 9, \"buckets\": [[8, 1], [4, 1]]}"));
  // Out-of-range resolution.
  EXPECT_TRUE(bad("{\"count\": 0, \"sum\": 0, \"subbits\": 9, "
                  "\"buckets\": []}"));
}

// -- ServeCore periodic reporter ---------------------------------------------

TEST(TelemetryReporterTest, TicksFillRollingWindowAndQuiesce) {
  MetricsRegistry registry;
  std::atomic<std::uint64_t> callbacks{0};
  serve::ServeOptions options;
  options.run.obs.metrics = &registry;
  options.telemetry_interval_ms = 2;
  options.telemetry_window = 4;
  options.on_telemetry = [&](const serve::TelemetryRecord&) {
    callbacks.fetch_add(1);
  };
  {
    serve::ServeCore core(synth(20, 1), options);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (core.telemetry_ticks() < 6 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(core.telemetry_ticks(), 6u) << "reporter never ticked";

    const auto window = core.telemetry_window();
    ASSERT_FALSE(window.empty());
    EXPECT_LE(window.size(), 4u);  // rolling, not unbounded
    for (std::size_t i = 1; i < window.size(); ++i) {
      EXPECT_LT(window[i - 1].tick, window[i].tick);  // oldest first
      EXPECT_LE(window[i - 1].uptime_ms, window[i].uptime_ms);
    }
    // Each record snapshots after its tick-counter bump.
    const auto& last = window.back();
    EXPECT_GE(last.metrics.counters.at(names::kServeTelemetryTicks),
              last.tick);
    EXPECT_EQ(last.health.sequence, core.current_sequence());
    EXPECT_GE(callbacks.load(), window.size());
  }
  // Destruction joined the reporter; no further callbacks can arrive.
  const std::uint64_t after = callbacks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(callbacks.load(), after);
}

TEST(TelemetryReporterTest, IntervalZeroStartsNoReporter) {
  MetricsRegistry registry;
  serve::ServeOptions options;
  options.run.obs.metrics = &registry;
  serve::ServeCore core(synth(20, 1), options);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(core.telemetry_ticks(), 0u);
  EXPECT_TRUE(core.telemetry_window().empty());
  // On-demand telemetry still works and is byte-identical to the raw
  // registry snapshot when no fault plan is installed.
  EXPECT_EQ(core.telemetry_now().metrics.to_json(),
            registry.snapshot().to_json());
}

TEST(TelemetryReporterTest, TelemetryOverlaysFaultSiteCounters) {
  // An armed-but-never-firing site counts hits without disturbing swaps.
  FaultSpec spec;
  spec.site = fault::sites::kSwapCompile;
  FaultPlan plan(3, {spec});
  MetricsRegistry registry;
  serve::ServeOptions options;
  options.run.obs.metrics = &registry;
  options.run.faults = &plan;
  serve::ServeCore core(synth(20, 1), options);
  ASSERT_TRUE(core.swap(synth(25, 2)).ok());

  const MetricsSnapshot snap = core.telemetry_now().metrics;
  EXPECT_EQ(snap.counters.at("rt.fault.site.serve.swap.compile.hits"), 1u);
  EXPECT_EQ(snap.counters.at(names::kFaultTotalFires), 0u);
  // The overlay is point-in-time: the raw registry never saw the keys.
  EXPECT_EQ(
      registry.snapshot().counters.count("rt.fault.site.serve.swap.compile.hits"),
      0u);
}

// -- Swap-storm acceptance ---------------------------------------------------

TEST(TelemetryReporterTest, SwapStormExportsValidateAndP99Recomputes) {
  MetricsRegistry registry(4);
  std::string series;
  std::mutex series_mu;
  const MetricsExporter exporter;
  std::uint64_t seq = 0;
  serve::ServeOptions options;
  options.run.obs.metrics = &registry;
  options.telemetry_interval_ms = 1;
  options.telemetry_window = 256;
  options.on_telemetry = [&](const serve::TelemetryRecord& record) {
    std::lock_guard<std::mutex> lock(series_mu);
    series += exporter.jsonl(record.metrics, ++seq, record.uptime_ms);
  };
  serve::ServeCore core(synth(40, 5), options);
  const std::vector<Packet> pool = trace_for(synth(40, 5), 4096, 9);

  std::atomic<bool> done{false};
  std::thread storm([&] {
    std::uint64_t round = 0;
    while (!done.load()) {
      (void)core.swap(synth(40 + round % 3, 100 + round));
      ++round;
    }
  });
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      auto shard = core.shard();
      for (std::size_t i = 0; i < 60; ++i) {
        const std::size_t start = ((t * 60 + i) * 131) % (pool.size() - 64);
        (void)shard.classify(
            std::span<const Packet>(pool).subspan(start, 64));
      }
    });
  }
  for (std::thread& r : readers) {
    r.join();
  }
  done.store(true);
  storm.join();

  // Exports taken mid-flight and at rest must both validate.
  const serve::TelemetryRecord final_record = core.telemetry_now();
  const std::string prom = exporter.prometheus(final_record.metrics);
  const PromValidation prom_ok = validate_prometheus(prom);
  EXPECT_TRUE(prom_ok.ok) << prom_ok.error;
  EXPECT_GT(prom_ok.samples, 0u);
  {
    std::lock_guard<std::mutex> lock(series_mu);
    series += exporter.jsonl(final_record.metrics, ++seq,
                             final_record.uptime_ms);
    const JsonlValidation jsonl_ok = validate_metrics_jsonl(series);
    EXPECT_TRUE(jsonl_ok.ok) << jsonl_ok.error;
    EXPECT_GE(jsonl_ok.records, 2u) << "reporter produced no ticks";
  }

  // The exported p99 of serve.batch.ns must be recomputable offline from
  // the same record's buckets — parse the last JSONL line back and
  // compare against HistogramSnapshot::quantile.
  const std::string line = exporter.jsonl(final_record.metrics, 1, 0);
  std::string error;
  auto doc = json::parse(line.substr(0, line.size() - 1), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto back = metrics_from_json(*doc, &error);
  ASSERT_TRUE(back.has_value()) << error;
  const HistogramSnapshot& batch =
      back->histograms.at(names::kServeBatchNs);
  ASSERT_GT(batch.count, 0u);
  const json::Value* exported =
      doc->find("histograms")->find(names::kServeBatchNs);
  ASSERT_NE(exported, nullptr);
  EXPECT_DOUBLE_EQ(exported->find("p99")->number, batch.quantile(0.99));
  // And the recomputed p99 is bracketed by its bucket's bounds: the
  // log-linear error contract (docs/observability.md).
  const double p99 = batch.quantile(0.99);
  const std::size_t bucket = Histogram::bucket_of(
      static_cast<std::uint64_t>(p99), batch.subbits);
  const std::uint64_t lo =
      Histogram::bucket_lower_bound(bucket, batch.subbits);
  EXPECT_GE(p99, static_cast<double>(lo));
  EXPECT_LE(p99, static_cast<double>(
                     Histogram::bucket_next_bound(lo, batch.subbits)));

  // S1 dedup holds under the storm: the batch span no longer
  // double-records as a phase histogram.
  EXPECT_EQ(back->histograms.count("phase.serve.batch_ns"), 0u);
}

// -- dfw_bench_diff ----------------------------------------------------------

std::string bench_doc(std::uint64_t serve_wall, std::uint64_t compile_wall) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"dfw-bench-obs-v1\",\n  \"bench\": \"t\",\n"
      << "  \"records\": [\n"
      << "    {\"name\": \"serve_throughput\", \"params\": {\"threads\": 2, "
         "\"swap_period_ms\": 0, \"lookups_per_sec\": "
      << (serve_wall / 7)
      << "}, \"wall_ns\": " << serve_wall
      << ", \"metrics\": {\"counters\": {}, \"histograms\": "
         "{\"serve.batch.ns\": {\"count\": 2, \"sum\": "
      << serve_wall << ", \"buckets\": [[" << (serve_wall / 4) << ", 2]]}}}},\n"
      << "    {\"name\": \"compile.flat_slab\", \"params\": {\"rules\": 100}, "
         "\"wall_ns\": "
      << compile_wall
      << ", \"metrics\": {\"counters\": {}, \"histograms\": {}}}\n"
      << "  ]\n}\n";
  return out.str();
}

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

TEST(BenchDiffTest, IdenticalPairPassesSlowedRecordFails) {
  const std::string base =
      write_temp("bd_base.json", bench_doc(1000000, 500000));
  const std::string same =
      write_temp("bd_same.json", bench_doc(1000000, 500000));
  const std::string slow =
      write_temp("bd_slow.json", bench_doc(4000000, 500000));

  std::ostringstream out;
  std::ostringstream err;
  // Identical pair: every ratio is exactly 1.0.
  EXPECT_EQ(bench::run_bench_diff_cli(
                {"--max-ratio=2.0",
                 "--key-params=threads,swap_period_ms,rules", base, same},
                out, err),
            0)
      << out.str() << err.str();
  // A 4x slowdown on one record breaches the 2x gate.
  out.str("");
  EXPECT_EQ(bench::run_bench_diff_cli(
                {"--max-ratio=2.0",
                 "--key-params=threads,swap_period_ms,rules", base, slow},
                out, err),
            1);
  EXPECT_NE(out.str().find("BREACH"), std::string::npos);
  // The same pair passes a 5x gate.
  EXPECT_EQ(bench::run_bench_diff_cli(
                {"--max-ratio=5.0",
                 "--key-params=threads,swap_period_ms,rules", base, slow},
                out, err),
            0);
}

TEST(BenchDiffTest, KeyParamsSelectAndQuantileKnobs) {
  const std::string base =
      write_temp("bd_kb.json", bench_doc(1000000, 500000));
  const std::string slow =
      write_temp("bd_ks.json", bench_doc(4000000, 500000));
  std::ostringstream out;
  std::ostringstream err;
  // Without --key-params the measured lookups_per_sec param splits the
  // serve records' identity, so the 4x regression silently drops out of
  // the comparison (only the compile records match) — the hazard that
  // motivates pinning the identity params in CI.
  EXPECT_EQ(bench::run_bench_diff_cli({base, slow}, out, err), 0);
  // A selector that matches nothing is a usage error, not a green light.
  EXPECT_EQ(bench::run_bench_diff_cli({"--select=no.such.", base, slow},
                                      out, err),
            2);
  // --select compares only the compile records, which are identical.
  EXPECT_EQ(bench::run_bench_diff_cli({"--select=compile.",
                                       "--key-params=rules", base, slow},
                                      out, err),
            0);
  // The histogram quantile comparison catches the slowed latency too.
  out.str("");
  EXPECT_EQ(bench::run_bench_diff_cli(
                {"--select=serve_throughput",
                 "--key-params=threads,swap_period_ms",
                 "--hist=serve.batch.ns", "--quantile=0.99", base, slow},
                out, err),
            1);
  EXPECT_NE(out.str().find("serve.batch.ns"), std::string::npos);
}

TEST(BenchDiffTest, ReportAndValidatorModes) {
  const std::string base =
      write_temp("bd_rb.json", bench_doc(1000000, 500000));
  const std::string slow =
      write_temp("bd_rs.json", bench_doc(4000000, 500000));
  const std::string report =
      (std::filesystem::path(::testing::TempDir()) / "bd_report.json")
          .string();
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(bench::run_bench_diff_cli(
                {"--key-params=threads,swap_period_ms,rules",
                 "--report=" + report, base, slow},
                out, err),
            1);
  // The report is a parseable dfw-bench-diff-v1 document with a breach.
  std::ifstream in(report, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto doc = json::parse(buffer.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema")->string, "dfw-bench-diff-v1");
  EXPECT_EQ(doc->find("breaches")->number, 1.0);

  // Validator mode: exporter output passes, corrupted output exits 1,
  // usage errors exit 2.
  MetricsRegistry registry;
  registry.counter("c").add(1);
  registry.histogram("h").record(5);
  const MetricsExporter exporter;
  const std::string prom_path = write_temp(
      "bd_prom.txt", exporter.prometheus(registry.snapshot()));
  const std::string jsonl_path =
      write_temp("bd_metrics.jsonl",
                 exporter.jsonl(registry.snapshot(), 1, 0));
  EXPECT_EQ(bench::run_bench_diff_cli({"--validate-prom=" + prom_path,
                                       "--validate-jsonl=" + jsonl_path},
                                      out, err),
            0);
  const std::string broken =
      write_temp("bd_broken.txt", "dfw_x 1\n# TYPE dfw_x counter\n");
  EXPECT_EQ(
      bench::run_bench_diff_cli({"--validate-prom=" + broken}, out, err), 1);
  EXPECT_EQ(bench::run_bench_diff_cli({"--nonsense"}, out, err), 2);
  EXPECT_EQ(bench::run_bench_diff_cli({base}, out, err), 2);
}

}  // namespace
}  // namespace dfw
