// Simplification tests: make_simple must produce single-interval, sorted,
// all-fields-on-every-path diagrams while preserving semantics exactly.

#include <gtest/gtest.h>

#include "fdd/construct.hpp"
#include "fdd/simplify.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

TEST(FddSimplify, SplitsMultiIntervalEdges) {
  const Schema schema = tiny2();
  IntervalSet two_runs;
  two_runs.add(Interval(0, 1));
  two_runs.add(Interval(5, 7));
  const Policy p(schema,
                 {Rule(schema, {two_runs, IntervalSet(Interval(0, 7))},
                       kDiscard),
                  Rule::catch_all(schema, kAccept)});
  Fdd fdd = build_fdd(p);
  EXPECT_FALSE(fdd.is_simple());
  make_simple(fdd);
  EXPECT_TRUE(fdd.is_simple());
  fdd.validate();
  EXPECT_TRUE(test::fdd_matches_policy(fdd, p));
}

TEST(FddSimplify, InsertsSkippedFieldNodes) {
  // A hand-built diagram that decides on x alone; simplification must give
  // every path an explicit y node (node insertion, Section 4 operation 1).
  auto root = FddNode::make_internal(0);
  root->edges.emplace_back(IntervalSet(Interval(0, 3)),
                           FddNode::make_terminal(kAccept));
  root->edges.emplace_back(IntervalSet(Interval(4, 7)),
                           FddNode::make_terminal(kDiscard));
  Fdd fdd(tiny2(), std::move(root));
  fdd.validate();
  EXPECT_FALSE(fdd.is_simple());
  make_simple(fdd);
  EXPECT_TRUE(fdd.is_simple());
  fdd.validate();
  EXPECT_EQ(fdd.evaluate({2, 5}), kAccept);
  EXPECT_EQ(fdd.evaluate({5, 5}), kDiscard);
}

TEST(FddSimplify, ConstantFddBecomesFullTree) {
  Fdd fdd = Fdd::constant(tiny3(), kAccept);
  make_simple(fdd);
  EXPECT_TRUE(fdd.is_simple());
  fdd.validate();
  // One full-domain node per field, one terminal.
  EXPECT_EQ(fdd.node_count(), 4u);
  EXPECT_EQ(fdd.evaluate({0, 0, 0}), kAccept);
}

TEST(FddSimplify, SortsEdges) {
  auto root = FddNode::make_internal(0);
  root->edges.emplace_back(IntervalSet(Interval(4, 7)),
                           FddNode::make_terminal(kDiscard));
  root->edges.emplace_back(IntervalSet(Interval(0, 3)),
                           FddNode::make_terminal(kAccept));
  Fdd fdd(Schema({{"x", Interval(0, 7), FieldKind::kInteger}}),
          std::move(root));
  make_simple(fdd);
  EXPECT_TRUE(fdd.is_simple());
  EXPECT_EQ(fdd.root().edges[0].label.min(), 0u);
  EXPECT_EQ(fdd.root().edges[1].label.min(), 4u);
}

TEST(FddSimplify, PreservesSemanticsOnRandomPolicies) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const Policy p = test::random_policy(tiny3(), 5, rng);
    Fdd fdd = build_fdd(p);
    make_simple(fdd);
    EXPECT_TRUE(fdd.is_simple());
    fdd.validate();
    EXPECT_TRUE(test::fdd_matches_policy(fdd, p));
  }
}

TEST(FddSimplify, IdempotentOnSimpleFdds) {
  std::mt19937_64 rng(5);
  const Policy p = test::random_policy(tiny2(), 4, rng);
  Fdd fdd = build_fdd(p);
  make_simple(fdd);
  const Fdd snapshot = fdd.clone();
  make_simple(fdd);
  EXPECT_TRUE(structurally_equal(snapshot, fdd));
}

}  // namespace
}  // namespace dfw
