// Cross-backend equivalence harness: every compiled classifier layout
// (flat-slab, prefix-trie, bit-parallel) must produce byte-identical
// decisions — to each other, to the interpreted FDD walk, to the policy's
// first-match evaluation, and (on the accept/discard fragment) to the BDD
// baseline. Probes mix exhaustive small universes, random five-tuple
// traffic, and adversarial edge packets sitting exactly on interval
// boundaries, where off-by-one bugs live. Batch paths are checked for
// determinism across 1/2/8-thread executors: parallelism may reorder
// work, never output.

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "bdd/packet_encode.hpp"
#include "engine/classifier.hpp"
#include "fdd/construct.hpp"
#include "obs/names.hpp"
#include "rt/executor.hpp"
#include "rt/govern.hpp"
#include "synth/synth.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

constexpr ClassifierBackendKind kAllBackends[] = {
    ClassifierBackendKind::kFlatSlab,
    ClassifierBackendKind::kPrefixTrie,
    ClassifierBackendKind::kBitParallel,
};

Classifier compile_with(const Fdd& fdd, ClassifierBackendKind kind) {
  CompileOptions options;
  options.backend = kind;
  return Classifier::compile(fdd, options);
}

/// Adversarial probes: every rule-conjunct corner and every domain corner,
/// in every combination pattern that stays one packet (per-field lows,
/// per-field highs, and low/high alternations).
std::vector<Packet> edge_packets(const Policy& policy) {
  const Schema& schema = policy.schema();
  const std::size_t d = schema.field_count();
  std::vector<Packet> probes;
  for (std::size_t i = 0; i < policy.size(); ++i) {
    Packet lo(d), hi(d), lohi(d), hilo(d);
    for (std::size_t f = 0; f < d; ++f) {
      lo[f] = policy.rule(i).conjunct(f).min();
      hi[f] = policy.rule(i).conjunct(f).max();
      lohi[f] = (f % 2 == 0) ? lo[f] : hi[f];
      hilo[f] = (f % 2 == 0) ? hi[f] : lo[f];
    }
    probes.push_back(lo);
    probes.push_back(hi);
    probes.push_back(lohi);
    probes.push_back(hilo);
    // One past / one before each corner (clamped to the domain) — the
    // packets adjacent to every boundary.
    for (std::size_t f = 0; f < d; ++f) {
      const Interval& domain = schema.domain(f);
      if (lo[f] > domain.lo()) {
        Packet p = lo;
        p[f] = lo[f] - 1;
        probes.push_back(std::move(p));
      }
      if (hi[f] < domain.hi()) {
        Packet p = hi;
        p[f] = hi[f] + 1;
        probes.push_back(std::move(p));
      }
    }
  }
  Packet domain_lo(d), domain_hi(d);
  for (std::size_t f = 0; f < d; ++f) {
    domain_lo[f] = schema.domain(f).lo();
    domain_hi[f] = schema.domain(f).hi();
  }
  probes.push_back(domain_lo);
  probes.push_back(domain_hi);
  return probes;
}

TEST(BackendKind, NameRoundTrip) {
  for (const ClassifierBackendKind kind : kAllBackends) {
    const auto parsed = parse_backend_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_backend_kind("slab").has_value());
  EXPECT_FALSE(parse_backend_kind("").has_value());
}

TEST(ClassifierBackend, AgreesWithPolicyExhaustively) {
  std::mt19937_64 rng(711);
  for (int trial = 0; trial < 25; ++trial) {
    const Policy p = test::random_policy(tiny3(), 6, rng);
    const Fdd fdd = build_reduced_fdd(p);
    for (const ClassifierBackendKind kind : kAllBackends) {
      const Classifier c = compile_with(fdd, kind);
      EXPECT_EQ(c.backend(), kind);
      for (const Packet& pkt : test::all_packets(tiny3())) {
        ASSERT_EQ(c.classify(pkt), p.evaluate(pkt))
            << to_string(kind) << " trial " << trial;
      }
    }
  }
}

TEST(ClassifierBackend, ConstantPolicy) {
  const Schema s = tiny2();
  const Fdd fdd =
      build_reduced_fdd(Policy(s, {Rule::catch_all(s, kDiscard)}));
  for (const ClassifierBackendKind kind : kAllBackends) {
    const Classifier c = compile_with(fdd, kind);
    EXPECT_EQ(c.classify({0, 0}), kDiscard) << to_string(kind);
    EXPECT_EQ(c.classify({7, 7}), kDiscard) << to_string(kind);
  }
}

TEST(ClassifierBackend, FiveTupleRandomAndEdgeProbesAgree) {
  SynthConfig config;
  config.num_rules = 120;
  Rng rng(712);
  const Policy p = synth_policy(config, rng);
  const Fdd fdd = build_reduced_fdd(p);

  std::vector<Classifier> classifiers;
  for (const ClassifierBackendKind kind : kAllBackends) {
    classifiers.push_back(compile_with(fdd, kind));
  }

  std::vector<Packet> probes = edge_packets(p);
  std::uniform_int_distribution<Value> ip(0, UINT32_MAX);
  std::uniform_int_distribution<Value> port(0, 65535);
  std::uniform_int_distribution<Value> proto(0, 255);
  for (int probe = 0; probe < 3000; ++probe) {
    probes.push_back({ip(rng), ip(rng), port(rng), port(rng), proto(rng)});
  }

  for (const Packet& pkt : probes) {
    const Decision want = fdd.evaluate(pkt);
    ASSERT_EQ(p.evaluate(pkt), want);
    for (std::size_t b = 0; b < classifiers.size(); ++b) {
      ASSERT_EQ(classifiers[b].classify(pkt), want)
          << to_string(kAllBackends[b]);
    }
  }
}

TEST(ClassifierBackend, BddBaselineAgreesOnAcceptSet) {
  SynthConfig config;
  config.num_rules = 60;
  Rng rng(713);
  const Policy p = synth_policy(config, rng);
  const Fdd fdd = build_reduced_fdd(p);

  const BitLayout layout = layout_for(p.schema());
  BddManager mgr(layout.total_bits);
  const BddRef accept_set = encode_policy(mgr, layout, p);

  std::vector<Classifier> classifiers;
  for (const ClassifierBackendKind kind : kAllBackends) {
    classifiers.push_back(compile_with(fdd, kind));
  }

  std::uniform_int_distribution<Value> ip(0, UINT32_MAX);
  std::uniform_int_distribution<Value> port(0, 65535);
  std::uniform_int_distribution<Value> proto(0, 255);
  for (int probe = 0; probe < 1000; ++probe) {
    const Packet pkt = {ip(rng), ip(rng), port(rng), port(rng), proto(rng)};
    const bool accepted =
        mgr.evaluate(accept_set, encode_packet(layout, pkt));
    for (std::size_t b = 0; b < classifiers.size(); ++b) {
      ASSERT_EQ(classifiers[b].classify(pkt) == kAccept, accepted)
          << to_string(kAllBackends[b]);
    }
  }
}

TEST(ClassifierBackend, BatchDeterminismAcrossThreadCounts) {
  SynthConfig config;
  config.num_rules = 80;
  Rng rng(714);
  const Policy p = synth_policy(config, rng);
  const Fdd fdd = build_reduced_fdd(p);

  std::vector<Packet> packets;
  std::uniform_int_distribution<Value> ip(0, UINT32_MAX);
  std::uniform_int_distribution<Value> port(0, 65535);
  std::uniform_int_distribution<Value> proto(0, 255);
  for (int i = 0; i < 4000; ++i) {
    packets.push_back({ip(rng), ip(rng), port(rng), port(rng), proto(rng)});
  }

  for (const ClassifierBackendKind kind : kAllBackends) {
    CompileOptions options;
    options.backend = kind;
    options.batch_grain = 64;  // force many chunks even at 8 threads
    const Classifier c = Classifier::compile(fdd, options);

    const std::vector<Decision> serial = c.classify_batch(packets);
    ASSERT_EQ(serial.size(), packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i) {
      ASSERT_EQ(serial[i], c.classify(packets[i])) << to_string(kind);
    }
    for (const std::size_t threads : {2u, 8u}) {
      Executor pool(threads);
      RunOptions run;
      run.executor = &pool;
      EXPECT_EQ(c.classify_batch(packets, run), serial)
          << to_string(kind) << " threads=" << threads;
      std::vector<Decision> out(packets.size(), Decision{0xff});
      c.classify_into(packets, out, run);
      EXPECT_EQ(out, serial) << to_string(kind) << " threads=" << threads;
    }
    std::vector<Decision> out(packets.size(), Decision{0xff});
    c.classify_into(packets, out);
    EXPECT_EQ(out, serial) << to_string(kind);
  }
}

TEST(ClassifierBackend, ClassifyIntoValidatesOutputSize) {
  std::mt19937_64 rng(715);
  const Policy p = test::random_policy(tiny2(), 4, rng);
  const Classifier c = Classifier::compile(p);
  const std::vector<Packet> packets = test::all_packets(tiny2());
  std::vector<Decision> short_out(packets.size() - 1);
  EXPECT_THROW(c.classify_into(packets, short_out), std::invalid_argument);
}

TEST(ClassifierBackend, BitParallelPathCapThrowsStructuredCapacityError) {
  std::mt19937_64 rng(716);
  const Policy p = test::random_policy(tiny3(), 6, rng);
  CompileOptions options;
  options.backend = ClassifierBackendKind::kBitParallel;
  options.bit_parallel_max_paths = 1;
  // A structured code, not a raw std::length_error: callers (the serve
  // plane's degradation path) dispatch on it.
  try {
    Classifier::compile(p, options);
    FAIL() << "path cap did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCapacityExceeded);
  }
}

TEST(ClassifierBackend, CompilePhaseAndBatchMetricsRecorded) {
  std::mt19937_64 rng(717);
  const Policy p = test::random_policy(tiny3(), 6, rng);
  for (const ClassifierBackendKind kind : kAllBackends) {
    MetricsRegistry metrics;
    CompileOptions options;
    options.backend = kind;
    options.run.obs.metrics = &metrics;
    const Classifier c = Classifier::compile(p, options);
    const std::string phase =
        std::string("phase.") + compile_phase_name(kind) + "_ns";
    EXPECT_EQ(metrics.histogram(phase).count(), 1u) << to_string(kind);

    const std::vector<Packet> packets = test::all_packets(tiny3());
    c.classify_batch(packets);
    c.classify_batch(packets);
    EXPECT_EQ(metrics.counter(names::kClassifierBatchCount).value(), 2u);
    EXPECT_EQ(metrics.counter(names::kClassifierLookupCount).value(),
              2 * packets.size());
    EXPECT_EQ(metrics.histogram(names::kClassifierBatchNs).count(), 2u);
  }
}

}  // namespace
}  // namespace dfw
