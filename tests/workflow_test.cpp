// DiverseDesign session tests: submission gating, comparison phases, and
// end-to-end resolution.

#include <gtest/gtest.h>

#include "diverse/workflow.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

TEST(Workflow, SubmitValidatesComprehensiveness) {
  DiverseDesign session((DecisionSet()));
  const Schema s = tiny2();
  const Policy partial(
      s, {Rule(s, {IntervalSet(Interval(0, 3)), IntervalSet(Interval(0, 7))},
               kAccept)});
  EXPECT_THROW(session.submit("team", partial), std::logic_error);
  EXPECT_EQ(session.team_count(), 0u);
}

TEST(Workflow, SubmitRejectsSchemaMismatch) {
  std::mt19937_64 rng(1);
  DiverseDesign session((DecisionSet()));
  session.submit("a", test::random_policy(tiny2(), 3, rng));
  EXPECT_THROW(session.submit("b", test::random_policy(tiny3(), 3, rng)),
               std::invalid_argument);
}

TEST(Workflow, CompareNeedsTwoTeams) {
  std::mt19937_64 rng(2);
  DiverseDesign session((DecisionSet()));
  EXPECT_THROW(session.compare(), std::logic_error);
  session.submit("a", test::random_policy(tiny2(), 3, rng));
  EXPECT_THROW(session.compare(), std::logic_error);
  EXPECT_THROW(session.cross_compare(), std::logic_error);
}

TEST(Workflow, CrossCompareCoversAllPairs) {
  std::mt19937_64 rng(3);
  DiverseDesign session((DecisionSet()));
  for (int i = 0; i < 3; ++i) {
    session.submit("t" + std::to_string(i),
                   test::random_policy(tiny3(), 4, rng));
  }
  const std::vector<PairwiseReport> reports = session.cross_compare();
  ASSERT_EQ(reports.size(), 3u);  // (0,1), (0,2), (1,2)
  EXPECT_EQ(reports[0].team_a, 0u);
  EXPECT_EQ(reports[0].team_b, 1u);
  EXPECT_EQ(reports[2].team_a, 1u);
  EXPECT_EQ(reports[2].team_b, 2u);
}

TEST(Workflow, PairwiseUnionMatchesDirectComparison) {
  std::mt19937_64 rng(4);
  DiverseDesign session((DecisionSet()));
  for (int i = 0; i < 3; ++i) {
    session.submit("t" + std::to_string(i),
                   test::random_policy(tiny3(), 4, rng));
  }
  const std::vector<Discrepancy> direct = session.compare();
  const std::vector<PairwiseReport> pairs = session.cross_compare();
  // A packet is in some direct discrepancy iff it is in some pairwise one.
  for (const Packet& pkt : test::all_packets(tiny3())) {
    const auto in_any = [&](const std::vector<Discrepancy>& diffs) {
      for (const Discrepancy& d : diffs) {
        bool inside = true;
        for (std::size_t f = 0; f < pkt.size(); ++f) {
          inside = inside && d.conjuncts[f].contains(pkt[f]);
        }
        if (inside) {
          return true;
        }
      }
      return false;
    };
    bool in_pairwise = false;
    for (const PairwiseReport& r : pairs) {
      in_pairwise = in_pairwise || in_any(r.discrepancies);
    }
    EXPECT_EQ(in_any(direct), in_pairwise);
  }
}

TEST(Workflow, ResolveInFavourOfWinnerIsEquivalentToWinner) {
  std::mt19937_64 rng(5);
  DiverseDesign session((DecisionSet()));
  session.submit("a", test::random_policy(tiny3(), 5, rng));
  session.submit("b", test::random_policy(tiny3(), 5, rng));
  for (const ResolutionMethod method :
       {ResolutionMethod::kCorrectedFdd, ResolutionMethod::kPrependAndTrim}) {
    const Policy final_policy = session.resolve_in_favour_of(1, method, 0);
    EXPECT_TRUE(equivalent(final_policy, session.policy(1)));
  }
}

TEST(Workflow, MajorityVoteThroughTheSession) {
  // Two of three teams share a design; majority resolution reproduces it
  // through either method regardless of the base team.
  std::mt19937_64 rng(7);
  const Policy consensus = test::random_policy(tiny3(), 4, rng);
  const Policy outlier = test::random_policy(tiny3(), 4, rng);
  DiverseDesign session((DecisionSet()));
  session.submit("a", consensus);
  session.submit("b", outlier);
  session.submit("c", consensus);
  const ResolutionPlan plan = plan_by_majority(session.compare(), 0);
  for (const ResolutionMethod method :
       {ResolutionMethod::kCorrectedFdd, ResolutionMethod::kPrependAndTrim}) {
    const Policy final_policy = session.resolve(plan, method, 1);
    EXPECT_TRUE(equivalent(final_policy, consensus));
  }
}

TEST(Workflow, PolicyAccessorBounds) {
  DiverseDesign session((DecisionSet()));
  EXPECT_THROW(session.policy(0), std::out_of_range);
}

TEST(Workflow, ReportOnEquivalentTeamsSaysSo) {
  std::mt19937_64 rng(6);
  DiverseDesign session((DecisionSet()));
  const Policy p = test::random_policy(tiny2(), 4, rng);
  session.submit("a", p);
  session.submit("b", p);
  EXPECT_NE(session.report().find("equivalent"), std::string::npos);
}

}  // namespace
}  // namespace dfw
