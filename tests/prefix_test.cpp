// Prefix unit tests: CIDR parsing, prefix/interval bijection, and the
// minimal-cover conversion with its 2w-2 bound (paper, Section 7.1).

#include <gtest/gtest.h>

#include <random>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace dfw {
namespace {

TEST(Prefix, ConstructionValidation) {
  EXPECT_NO_THROW(Prefix(0xC0A80000u, 16));
  EXPECT_THROW(Prefix(0xC0A80001u, 16), std::invalid_argument);  // host bits
  EXPECT_THROW(Prefix(0, 33), std::invalid_argument);
  EXPECT_THROW(Prefix(0, -1), std::invalid_argument);
  EXPECT_THROW(Prefix(0, 0, 0), std::invalid_argument);   // width too small
  EXPECT_THROW(Prefix(0, 0, 33), std::invalid_argument);  // width too big
  EXPECT_THROW(Prefix(16, 4, 4), std::invalid_argument);  // bits > domain
}

TEST(Prefix, ToIntervalMatchesCidrSemantics) {
  const Prefix p(*parse_ipv4("224.168.0.0"), 16);
  const Interval iv = p.to_interval();
  EXPECT_EQ(iv.lo(), *parse_ipv4("224.168.0.0"));
  EXPECT_EQ(iv.hi(), *parse_ipv4("224.168.255.255"));
  EXPECT_EQ(Prefix(0, 0).to_interval(), Interval(0, UINT32_MAX));
  EXPECT_EQ(Prefix(7, 32).to_interval(), Interval(7, 7));
}

TEST(Prefix, ContainsValue) {
  const Prefix p(*parse_ipv4("10.0.0.0"), 8);
  EXPECT_TRUE(p.contains(*parse_ipv4("10.1.2.3")));
  EXPECT_FALSE(p.contains(*parse_ipv4("11.0.0.0")));
}

TEST(Prefix, ParseCidr) {
  const auto p = parse_prefix("224.168.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->bits(), *parse_ipv4("224.168.0.0"));
  // Bare address = /32.
  const auto host = parse_prefix("192.168.0.1");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->length(), 32);
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_prefix("224.168.0.0/33"));
  EXPECT_FALSE(parse_prefix("224.168.0.0/"));
  EXPECT_FALSE(parse_prefix("224.168.0.0/1x"));
  EXPECT_FALSE(parse_prefix("224.168.0.1/16"));  // host bits set
  EXPECT_FALSE(parse_prefix("notanip/8"));
}

TEST(Prefix, ToStringCidr) {
  EXPECT_EQ(Prefix(*parse_ipv4("224.168.0.0"), 16).to_string(),
            "224.168.0.0/16");
  EXPECT_EQ(Prefix(4, 3, 4).to_string(), "4/3");  // narrow width form
}

TEST(Prefix, IntervalToPrefixesSinglePrefix) {
  const auto cover =
      interval_to_prefixes(Prefix(*parse_ipv4("10.0.0.0"), 8).to_interval());
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].to_string(), "10.0.0.0/8");
}

TEST(Prefix, IntervalToPrefixesKnownExample) {
  // The paper's example: [2, 8] over small width -> 001*, 01*, 1000.
  const auto cover = interval_to_prefixes(Interval(2, 8), 4);
  ASSERT_EQ(cover.size(), 3u);
  EXPECT_EQ(cover[0].bits(), 2u);
  EXPECT_EQ(cover[0].length(), 3);
  EXPECT_EQ(cover[1].bits(), 4u);
  EXPECT_EQ(cover[1].length(), 2);
  EXPECT_EQ(cover[2].bits(), 8u);
  EXPECT_EQ(cover[2].length(), 4);
}

TEST(Prefix, IntervalToPrefixesFullDomain) {
  const auto cover = interval_to_prefixes(Interval(0, UINT32_MAX), 32);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].length(), 0);
}

TEST(Prefix, CoverIsExactDisjointAndOrdered) {
  std::mt19937_64 rng(123);
  constexpr int kWidth = 10;
  std::uniform_int_distribution<Value> point(0, (1u << kWidth) - 1);
  for (int trial = 0; trial < 300; ++trial) {
    const Value a = point(rng);
    const Value b = point(rng);
    const Interval iv(std::min(a, b), std::max(a, b));
    const auto cover = interval_to_prefixes(iv, kWidth);
    // Bound from Section 7.1: at most 2w-2 prefixes.
    EXPECT_LE(cover.size(), static_cast<std::size_t>(2 * kWidth - 2));
    // Exactness: union of covers == interval, pairwise disjoint, ordered.
    Value expected_next = iv.lo();
    for (const Prefix& p : cover) {
      const Interval piece = p.to_interval();
      EXPECT_EQ(piece.lo(), expected_next);
      expected_next = piece.hi() + 1;
    }
    EXPECT_EQ(expected_next, iv.hi() + 1);
  }
}

TEST(Prefix, WorstCaseCoverSizeIsReachable) {
  // [1, 2^w - 2] needs 2w-2 prefixes — the classic worst case.
  constexpr int kWidth = 8;
  const auto cover =
      interval_to_prefixes(Interval(1, (1u << kWidth) - 2), kWidth);
  EXPECT_EQ(cover.size(), static_cast<std::size_t>(2 * kWidth - 2));
}

TEST(Prefix, RejectsOutOfDomainInterval) {
  EXPECT_THROW(interval_to_prefixes(Interval(0, 16), 4),
               std::invalid_argument);
  EXPECT_THROW(interval_to_prefixes(Interval(0, 1), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dfw
