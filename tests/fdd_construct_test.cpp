// Construction algorithm (Fig. 7) unit tests: incremental appends,
// first-match precedence, partial FDDs, and structural invariants.

#include <gtest/gtest.h>

#include "fdd/construct.hpp"
#include "fdd/stats.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

Rule make_rule(const Schema& schema, std::vector<IntervalSet> conjuncts,
               Decision d) {
  return Rule(schema, std::move(conjuncts), d);
}

TEST(FddConstruct, SingleCatchAllRuleGivesOnePath) {
  const Schema schema = tiny2();
  const Policy p(schema, {Rule::catch_all(schema, kAccept)});
  const Fdd fdd = build_fdd(p);
  fdd.validate();
  EXPECT_EQ(fdd.path_count(), 1u);
  EXPECT_EQ(fdd.evaluate({3, 3}), kAccept);
}

TEST(FddConstruct, SingleRulePartialFddHasOneDecisionPath) {
  const Schema schema = tiny2();
  const Policy p(schema,
                 {make_rule(schema, {Interval(2, 4), Interval(1, 3)}, kAccept),
                  Rule::catch_all(schema, kDiscard)});
  const Fdd partial = build_partial_fdd(p, 1);
  EXPECT_EQ(partial.path_count(), 1u);
  // Partial: packets outside the rule fall off the diagram.
  EXPECT_EQ(partial.evaluate({3, 2}), kAccept);
  EXPECT_THROW(partial.evaluate({0, 0}), std::logic_error);
  // Complete FDD covers everything.
  const Fdd full = build_fdd(p);
  full.validate();
  EXPECT_EQ(full.evaluate({0, 0}), kDiscard);
}

TEST(FddConstruct, FirstMatchWinsOnOverlap) {
  const Schema schema = tiny2();
  // Overlapping rules with conflicting decisions: [0,4] accept shadows
  // [2,7] discard on [2,4].
  const Policy p(schema,
                 {make_rule(schema, {Interval(0, 4), Interval(0, 7)}, kAccept),
                  make_rule(schema, {Interval(2, 7), Interval(0, 7)}, kDiscard),
                  Rule::catch_all(schema, kDiscard)});
  const Fdd fdd = build_fdd(p);
  fdd.validate();
  EXPECT_EQ(fdd.evaluate({2, 0}), kAccept);
  EXPECT_EQ(fdd.evaluate({4, 7}), kAccept);
  EXPECT_EQ(fdd.evaluate({5, 0}), kDiscard);
}

TEST(FddConstruct, AppendRuleMatchesBatchConstruction) {
  std::mt19937_64 rng(7);
  const Schema schema = tiny3();
  const Policy p = test::random_policy(schema, 6, rng);
  Fdd incremental = build_partial_fdd(p, 1);
  for (std::size_t i = 1; i < p.size(); ++i) {
    append_rule(incremental, p.rule(i));
  }
  const Fdd batch = build_fdd(p);
  EXPECT_TRUE(structurally_equal(incremental, batch));
}

TEST(FddConstruct, NonComprehensivePolicyYieldsIncompleteFdd) {
  const Schema schema = tiny2();
  const Policy p(
      schema, {make_rule(schema, {Interval(0, 3), Interval(0, 7)}, kAccept)});
  const Fdd fdd = build_fdd(p);
  EXPECT_THROW(fdd.validate(), std::logic_error);
  fdd.validate(/*require_complete=*/false);
}

TEST(FddConstruct, MultiIntervalConjunctsAreSupported) {
  const Schema schema = tiny2();
  IntervalSet holes;
  holes.add(Interval(0, 1));
  holes.add(Interval(6, 7));
  const Policy p(schema,
                 {make_rule(schema, {holes, IntervalSet(Interval(0, 7))},
                            kDiscard),
                  Rule::catch_all(schema, kAccept)});
  const Fdd fdd = build_fdd(p);
  fdd.validate();
  EXPECT_EQ(fdd.evaluate({0, 0}), kDiscard);
  EXPECT_EQ(fdd.evaluate({7, 0}), kDiscard);
  EXPECT_EQ(fdd.evaluate({3, 0}), kAccept);
}

TEST(FddConstruct, IdenticalRulesDoNotGrowTheDiagram) {
  const Schema schema = tiny2();
  const Rule r = make_rule(schema, {Interval(1, 3), Interval(2, 5)}, kAccept);
  const Policy once(schema, {r, Rule::catch_all(schema, kDiscard)});
  const Policy thrice(schema, {r, r, r, Rule::catch_all(schema, kDiscard)});
  EXPECT_EQ(build_fdd(once).node_count(), build_fdd(thrice).node_count());
}

TEST(FddConstruct, ShadowedRuleLeavesSemanticsUnchanged) {
  const Schema schema = tiny2();
  const Policy base(schema,
                    {make_rule(schema, {Interval(0, 7), Interval(0, 7)},
                               kAccept)});
  const Policy shadowed(
      schema, {make_rule(schema, {Interval(0, 7), Interval(0, 7)}, kAccept),
               make_rule(schema, {Interval(2, 3), Interval(2, 3)}, kDiscard)});
  EXPECT_TRUE(test::fdd_matches_policy(build_fdd(shadowed), base));
}

TEST(FddConstruct, DecisionPathEnumerationCoversTheSpace) {
  std::mt19937_64 rng(21);
  const Policy p = test::random_policy(tiny2(), 5, rng);
  const Fdd fdd = build_fdd(p);
  fdd.validate();
  // Sum of |path predicate| over all paths equals |packet space| because
  // paths partition the space (consistency + completeness).
  Value total = 0;
  fdd.for_each_path(
      [&](const std::vector<IntervalSet>& conjuncts, Decision) {
        Value n = 1;
        for (const IntervalSet& s : conjuncts) {
          n *= s.size();
        }
        total += n;
      });
  EXPECT_EQ(total, p.schema().packet_space_size());
}

}  // namespace
}  // namespace dfw
