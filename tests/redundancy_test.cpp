// Redundancy detection/removal tests (resolution method 2's engine).

#include <gtest/gtest.h>

#include "fdd/compare.hpp"
#include "gen/redundancy.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

Rule rule(const Schema& s, Interval x, Interval y, Decision d) {
  return Rule(s, {IntervalSet(x), IntervalSet(y)}, d);
}

TEST(Redundancy, DetectsShadowedRule) {
  const Schema s = tiny2();
  // Rule 2 is fully shadowed by rule 1 (upward redundancy).
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     rule(s, Interval(2, 4), Interval(1, 3), kDiscard),
                     Rule::catch_all(s, kDiscard)});
  EXPECT_FALSE(is_redundant(p, 0));
  EXPECT_TRUE(is_redundant(p, 1));
  EXPECT_FALSE(is_redundant(p, 2));
}

TEST(Redundancy, DetectsDownwardRedundantRule) {
  const Schema s = tiny2();
  // Rule 1 decides like the catch-all and nothing between them differs.
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 7), kAccept),
                     Rule::catch_all(s, kAccept)});
  EXPECT_TRUE(is_redundant(p, 0));
}

TEST(Redundancy, CatchAllIsNotRedundantWhenItDecidesTraffic) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 7), kAccept),
                     Rule::catch_all(s, kDiscard)});
  EXPECT_FALSE(is_redundant(p, 0));
  EXPECT_FALSE(is_redundant(p, 1));
}

TEST(Redundancy, RedundantRulesListsOriginalIndices) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 7), Interval(0, 7), kAccept),
                     rule(s, Interval(1, 2), Interval(1, 2), kDiscard),
                     rule(s, Interval(3, 4), Interval(3, 4), kDiscard),
                     Rule::catch_all(s, kAccept)});
  const std::vector<std::size_t> redundant = redundant_rules(p);
  // Rules 2 and 3 are shadowed; the catch-all duplicates rule 1's
  // decision, so removing *either* one alone preserves semantics.
  EXPECT_EQ(redundant, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(Redundancy, RemoveRedundantPreservesSemantics) {
  std::mt19937_64 rng(55);
  for (int trial = 0; trial < 15; ++trial) {
    const Policy p = test::random_policy(tiny3(), 6, rng);
    const Policy trimmed = remove_redundant(p);
    EXPECT_LE(trimmed.size(), p.size());
    EXPECT_TRUE(equivalent(p, trimmed));
    // Nothing left to remove.
    EXPECT_TRUE(redundant_rules(trimmed).empty());
  }
}

TEST(Redundancy, DuplicateRulesCollapse) {
  const Schema s = tiny2();
  const Rule r = rule(s, Interval(0, 3), Interval(0, 3), kDiscard);
  const Policy p(s, {r, r, r, Rule::catch_all(s, kAccept)});
  const Policy trimmed = remove_redundant(p);
  EXPECT_EQ(trimmed.size(), 2u);
  EXPECT_TRUE(equivalent(p, trimmed));
}

TEST(Redundancy, SingleRulePolicyUntouched) {
  const Schema s = tiny2();
  const Policy p(s, {Rule::catch_all(s, kAccept)});
  EXPECT_FALSE(is_redundant(p, 0));
  EXPECT_EQ(remove_redundant(p).size(), 1u);
}

TEST(Redundancy, IndexOutOfRangeRejected) {
  const Schema s = tiny2();
  const Policy p(s, {Rule::catch_all(s, kAccept)});
  EXPECT_THROW(is_redundant(p, 1), std::out_of_range);
}

}  // namespace
}  // namespace dfw
