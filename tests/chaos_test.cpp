// Chaos harness: deterministic fault injection (rt/fault.hpp) driven
// through the serve plane's self-healing machinery. The gates:
//
//   * a null fault plan is byte-identical to an unfaulted build — the
//     fault plane costs nothing when disarmed;
//   * every injected fault travels a structured unwind path: swaps
//     retry transient faults, degrade on capacity breaches, and never
//     disturb the served version on failure (last-good);
//   * under seeded fault storms — hundreds of injected faults across
//     several seeds — every classified batch stays byte-identical to a
//     serial replay against the version it pinned, versions are neither
//     torn nor leaked, and the same seed reproduces the same metrics;
//   * snapshots round-trip byte-identically on every backend, and a
//     truncated or corrupt snapshot is refused (exit 2 at the CLI),
//     never served.
//
// Set DFW_CHAOS_ARTIFACTS=<dir> to dump each storm seed's fault
// schedule and metrics snapshot (the CI chaos-smoke job uploads them).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/classifier.hpp"
#include "engine/trace.hpp"
#include "fdd/construct.hpp"
#include "fdd/serialize.hpp"
#include "fw/decision.hpp"
#include "fw/rule.hpp"
#include "fw/schema.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "rt/executor.hpp"
#include "rt/fault.hpp"
#include "rt/govern.hpp"
#include "serve/cli.hpp"
#include "serve/serve.hpp"
#include "serve/snapshot.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

using serve::BatchResult;
using serve::ServeCore;
using serve::ServeHealth;
using serve::ServeOptions;
using serve::ServeStats;

Policy make_policy(std::size_t rules, std::uint64_t seed) {
  SynthConfig config;
  config.num_rules = rules;
  Rng rng(seed);
  return synth_policy(config, rng);
}

std::vector<Decision> serial_replay(const Policy& policy,
                                    std::span<const Packet> packets) {
  std::vector<Decision> out;
  out.reserve(packets.size());
  for (const Packet& p : packets) {
    out.push_back(policy.evaluate(p));
  }
  return out;
}

FaultSpec count_spec(std::string site, std::uint64_t fire_on,
                     std::uint64_t period = 0) {
  FaultSpec spec;
  spec.site = std::move(site);
  spec.fire_on = fire_on;
  spec.period = period;
  return spec;
}

FaultSpec prob_spec(std::string site, double probability) {
  FaultSpec spec;
  spec.site = std::move(site);
  spec.probability = probability;
  return spec;
}

/// Serve options tuned for tests: instant backoff (no sleeps), metrics
/// into `registry`, faults from `plan`.
ServeOptions chaos_options(FaultPlan* plan, MetricsRegistry* registry) {
  ServeOptions options;
  options.run.faults = plan;
  options.run.obs.metrics = registry;
  options.swap_backoff_initial_ms = 0;
  options.swap_backoff_max_ms = 0;
  return options;
}

// -- FaultPlan units ----------------------------------------------------------

TEST(FaultPlan, FiresOnTheNthHitExactlyOnce) {
  FaultPlan plan(7, {count_spec("t.site", /*fire_on=*/3)});
  std::vector<std::uint64_t> fired;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    try {
      plan.hit("t.site");
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
      fired.push_back(i);
    }
  }
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{3}));
  const auto stats = plan.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].hits, 10u);
  EXPECT_EQ(stats[0].fires, 1u);
  EXPECT_EQ(plan.total_fires(), 1u);
}

TEST(FaultPlan, PeriodKeepsFiringAfterTheFirst) {
  FaultSpec spec;
  spec.site = "t.periodic";
  spec.fire_on = 2;
  spec.period = 3;
  FaultPlan plan(7, {spec});
  std::vector<std::uint64_t> fired;
  for (std::uint64_t i = 1; i <= 9; ++i) {
    try {
      plan.hit("t.periodic");
    } catch (const Error&) {
      fired.push_back(i);
    }
  }
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{2, 5, 8}));
}

TEST(FaultPlan, ProbabilityScheduleIsAPureFunctionOfTheSeed) {
  const auto fire_indices = [](std::uint64_t seed) {
    FaultSpec spec;
    spec.site = "t.prob";
    spec.probability = 0.5;
    FaultPlan plan(seed, {spec});
    std::vector<std::uint64_t> fired;
    for (std::uint64_t i = 1; i <= 200; ++i) {
      try {
        plan.hit("t.prob");
      } catch (const Error&) {
        fired.push_back(i);
      }
    }
    return fired;
  };
  const auto a = fire_indices(11);
  EXPECT_EQ(a, fire_indices(11)) << "same seed, same schedule";
  EXPECT_NE(a, fire_indices(12)) << "different seed, different schedule";
  EXPECT_GT(a.size(), 50u);
  EXPECT_LT(a.size(), 150u);
}

TEST(FaultPlan, UnarmedSitesAndNullPlansAreInert) {
  fault::hit(nullptr, fault::sites::kArenaAlloc);  // must not crash
  FaultPlan plan(1, {count_spec("t.armed", 1)});
  EXPECT_NO_THROW(plan.hit("t.other"));
  EXPECT_EQ(plan.total_hits(), 0u) << "unarmed sites are not counted";
}

TEST(FaultPlan, CustomErrorCodeMimicsSpecificFailures) {
  FaultSpec spec;
  spec.site = "t.capacity";
  spec.fire_on = 1;
  spec.code = ErrorCode::kCapacityExceeded;
  spec.message = "synthetic cap";
  FaultPlan plan(1, {spec});
  try {
    plan.hit("t.capacity");
    FAIL() << "did not fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCapacityExceeded);
    EXPECT_NE(std::string(e.what()).find("synthetic cap"),
              std::string::npos);
  }
}

TEST(FaultPlan, ToJsonCarriesScheduleAndCounts) {
  FaultPlan plan(42, {count_spec("t.site", 1)});
  EXPECT_THROW(plan.hit("t.site"), Error);
  const std::string json = plan.to_json();
  EXPECT_NE(json.find("dfw-fault-plan-v1"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"t.site\""), std::string::npos);
  EXPECT_NE(json.find("\"fires\": 1"), std::string::npos);
}

// -- Injection sites in the pipeline -----------------------------------------

TEST(FaultSites, PipelineSitesUnwindAsStructuredErrors) {
  const Policy policy = make_policy(20, 31);
  {
    FaultPlan plan(1, {count_spec(fault::sites::kConstructPhase, 1)});
    ConstructOptions options;
    options.run.faults = &plan;
    EXPECT_THROW(build_reduced_fdd(policy, options), Error);
    EXPECT_EQ(plan.total_fires(), 1u);
  }
  {
    // The arena allocation site sits where the node budget is charged;
    // firing it mid-build must unwind like a budget breach.
    FaultPlan plan(1, {count_spec(fault::sites::kArenaAlloc, 10)});
    ConstructOptions options;
    options.run.faults = &plan;
    EXPECT_THROW(build_reduced_fdd(policy, options), Error);
    EXPECT_GE(plan.stats()[0].hits, 10u);
  }
  {
    FaultPlan plan(1, {count_spec(fault::sites::kBackendCompile, 1)});
    CompileOptions options;
    options.run.faults = &plan;
    EXPECT_THROW(Classifier::compile(policy, options), Error);
    EXPECT_EQ(plan.total_fires(), 1u);
  }
}

TEST(FaultSites, NullPlanIsByteIdenticalToANeverFiringPlan) {
  const Policy policy = make_policy(30, 32);
  Rng rng(33);
  const std::vector<Packet> probes = synth_trace(policy, 400, rng);

  // Unfaulted baseline.
  const Fdd bare = build_reduced_fdd(policy);
  const Classifier bare_classifier = Classifier::compile(bare);

  // Armed plan that never reaches its trigger.
  FaultPlan plan(
      9, {count_spec(fault::sites::kArenaAlloc, /*fire_on=*/1u << 30)});
  ConstructOptions construct;
  construct.run.faults = &plan;
  const Fdd guarded = build_reduced_fdd(policy, construct);
  CompileOptions compile;
  compile.run.faults = &plan;
  const Classifier guarded_classifier = Classifier::compile(guarded, compile);

  EXPECT_EQ(serialize_fdd_dag(bare), serialize_fdd_dag(guarded))
      << "the fault plane must not perturb construction";
  for (const Packet& p : probes) {
    ASSERT_EQ(bare_classifier.classify(p), guarded_classifier.classify(p));
  }
  EXPECT_GT(plan.total_hits(), 0u) << "the sites were actually traversed";
  EXPECT_EQ(plan.total_fires(), 0u);
}

// -- Self-healing swaps -------------------------------------------------------

TEST(SelfHealingSwap, TransientCompileFaultRetriesAndSucceeds) {
  FaultPlan plan(1, {count_spec(fault::sites::kSwapCompile, 1)});
  MetricsRegistry registry;
  ServeOptions options = chaos_options(&plan, &registry);
  options.swap_max_retries = 2;
  ServeCore core(make_policy(15, 41), options);

  const Policy next = make_policy(15, 42);
  const auto result = core.swap(next);
  ASSERT_TRUE(result.ok()) << result.error().what();
  EXPECT_EQ(result.value(), 2u);

  const ServeStats stats = core.stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.swap_retries, 1u);
  EXPECT_EQ(stats.swap_failed, 0u);
  EXPECT_TRUE(core.health().last_swap_ok);
  EXPECT_EQ(registry.counter(names::kServeSwapRetries).value(), 1u);

  Rng rng(43);
  const std::vector<Packet> probes = synth_trace(next, 200, rng);
  const BatchResult batch = core.classify_batch(probes);
  EXPECT_EQ(batch.version, 2u);
  EXPECT_EQ(batch.decisions, serial_replay(next, probes));
}

TEST(SelfHealingSwap, ExhaustedRetriesFailAndKeepLastGood) {
  // period=1: the site fires on every hit, so healing cannot succeed.
  FaultSpec spec;
  spec.site = fault::sites::kSwapCompile;
  spec.fire_on = 1;
  spec.period = 1;
  FaultPlan plan(1, {spec});
  MetricsRegistry registry;
  ServeOptions options = chaos_options(&plan, &registry);
  options.swap_max_retries = 2;
  const Policy boot = make_policy(15, 44);
  ServeCore core(boot, options);

  const auto result = core.swap(make_policy(15, 45));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kFaultInjected);

  const ServeStats stats = core.stats();
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(stats.swap_retries, 2u);
  EXPECT_EQ(stats.swap_failed, 1u);
  EXPECT_EQ(stats.swaps_rejected, 1u);
  EXPECT_FALSE(core.health().last_swap_ok);

  // Last-good: still serving the boot policy at sequence 1.
  EXPECT_EQ(core.current_sequence(), 1u);
  Rng rng(46);
  const std::vector<Packet> probes = synth_trace(boot, 200, rng);
  const BatchResult batch = core.classify_batch(probes);
  EXPECT_EQ(batch.version, 1u);
  EXPECT_EQ(batch.decisions, serial_replay(boot, probes));
}

TEST(SelfHealingSwap, RecoveryFlipsHealthBackToOk) {
  // One single-shot fault, no retries: the first swap fails fast, the
  // second succeeds and clears the health flag.
  FaultPlan plan(1, {count_spec(fault::sites::kSwapCompile, 1)});
  ServeOptions options = chaos_options(&plan, nullptr);
  ServeCore core(make_policy(15, 47), options);

  ASSERT_FALSE(core.swap(make_policy(15, 48)).ok());
  EXPECT_FALSE(core.health().last_swap_ok);
  ASSERT_TRUE(core.swap(make_policy(15, 48)).ok());
  EXPECT_TRUE(core.health().last_swap_ok);
  EXPECT_EQ(core.current_sequence(), 2u);
}

TEST(SelfHealingSwap, PublishFaultReleasesTheCompiledVersionEagerly) {
  FaultPlan plan(1, {count_spec(fault::sites::kSwapPublish, 1)});
  MetricsRegistry registry;
  ServeOptions options = chaos_options(&plan, &registry);
  options.swap_max_retries = 1;
  ServeCore core(make_policy(15, 49), options);

  const auto result = core.swap(make_policy(15, 50));
  ASSERT_TRUE(result.ok()) << result.error().what();

  // The faulted attempt's compiled version was destroyed before the
  // retry, not retired: exactly one version (the boot one) ever entered
  // limbo, and it is reclaimable immediately.
  core.reclaim();
  const ServeStats stats = core.stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.swap_retries, 1u);
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.reclaimed, 1u);
  EXPECT_EQ(stats.limbo, 0u);
  EXPECT_LE(stats.limbo_peak, 1u);
}

TEST(SelfHealingSwap, CapacityBreachDegradesToFlatSlab) {
  // Boot a single-path policy under a path cap of 1, then swap in a
  // multi-path policy: the bit-parallel compile breaches the cap and the
  // swap self-heals onto flat_slab (no cap) instead of failing.
  const Schema schema = five_tuple_schema();
  const Policy trivial(schema, {Rule::catch_all(schema, kAccept)});
  MetricsRegistry registry;
  ServeOptions options = chaos_options(nullptr, &registry);
  options.backend = ClassifierBackendKind::kBitParallel;
  options.bit_parallel_max_paths = 1;
  ServeCore core(trivial, options);
  EXPECT_EQ(core.health().backend, ClassifierBackendKind::kBitParallel);

  const Policy next = make_policy(20, 51);
  const auto result = core.swap(next);
  ASSERT_TRUE(result.ok()) << result.error().what();

  const ServeStats stats = core.stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.swap_degraded, 1u);
  EXPECT_EQ(stats.swap_failed, 0u);
  EXPECT_EQ(core.health().backend, ClassifierBackendKind::kFlatSlab);
  EXPECT_EQ(registry.counter(names::kServeSwapDegraded).value(), 1u);

  // Degradation trades layout, never output.
  Rng rng(52);
  const std::vector<Packet> probes = synth_trace(next, 200, rng);
  EXPECT_EQ(core.classify_batch(probes).decisions,
            serial_replay(next, probes));
}

TEST(SelfHealingSwap, CapacityBreachFailsWhenDegradationIsDisabled) {
  const Schema schema = five_tuple_schema();
  const Policy trivial(schema, {Rule::catch_all(schema, kAccept)});
  ServeOptions options = chaos_options(nullptr, nullptr);
  options.backend = ClassifierBackendKind::kBitParallel;
  options.bit_parallel_max_paths = 1;
  options.degrade_on_capacity = false;
  ServeCore core(trivial, options);

  const auto result = core.swap(make_policy(20, 53));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCapacityExceeded);
  const ServeStats stats = core.stats();
  EXPECT_EQ(stats.swap_degraded, 0u);
  EXPECT_EQ(stats.swap_failed, 1u);
  EXPECT_EQ(core.current_sequence(), 1u) << "last-good";
  EXPECT_EQ(core.health().backend, ClassifierBackendKind::kBitParallel);
}

// -- Seeded chaos storms ------------------------------------------------------

/// One serial storm under a seeded fault schedule. Returns everything a
/// determinism comparison needs. Invariants asserted inside: every
/// classified batch replays byte-identically against its pinned
/// version's policy, and the version chain never tears.
struct StormOutcome {
  std::uint64_t fires = 0;
  std::uint64_t hits = 0;
  ServeStats stats;
  std::map<std::uint64_t, std::size_t> version_policy;
  std::string plan_json;
  std::string metrics_json;
};

StormOutcome run_serial_storm(std::uint64_t seed) {
  constexpr std::size_t kPolicies = 6;
  constexpr std::size_t kAttempts = 150;
  constexpr std::size_t kBatchLen = 64;

  std::vector<Policy> ring;
  ring.reserve(kPolicies);
  for (std::size_t i = 0; i < kPolicies; ++i) {
    ring.push_back(make_policy(20, 300 + i));
  }
  Rng rng(seed * 977 + 5);
  const std::vector<Packet> pool = synth_trace(ring[0], 2048, rng);
  const auto batch_window = [&](std::size_t i) {
    const std::size_t start = (i * 131) % (pool.size() - kBatchLen);
    return std::span<const Packet>(pool).subspan(start, kBatchLen);
  };

  // Swap-level probability faults; each site is hit once per attempt,
  // so failure rates stay bounded regardless of policy shape.
  FaultPlan plan(seed, {prob_spec(fault::sites::kSwapCompile, 0.25),
                        prob_spec(fault::sites::kBackendCompile, 0.15),
                        prob_spec(fault::sites::kSwapPublish, 0.15)});

  MetricsRegistry registry;
  ServeOptions options = chaos_options(&plan, &registry);
  options.swap_max_retries = 2;
  options.swap_jitter_seed = seed;
  ServeCore core(ring[0], options);

  StormOutcome outcome;
  outcome.version_policy[1] = 0;

  struct Record {
    std::uint64_t version;
    std::size_t window;
    std::vector<Decision> decisions;
  };
  std::vector<Record> records;

  for (std::size_t i = 0; i < kAttempts; ++i) {
    const std::size_t idx = i % kPolicies;
    const auto result = core.swap(ring[idx]);
    if (result.ok()) {
      outcome.version_policy[result.value()] = idx;
    } else {
      // Self-healing exhausted: only the transient class may surface.
      EXPECT_EQ(result.error().code(), ErrorCode::kFaultInjected);
    }
    if (i % 5 == 0) {
      BatchResult batch = core.classify_batch(batch_window(i));
      EXPECT_EQ(batch.status, ErrorCode::kOk);
      records.push_back({batch.version, i, std::move(batch.decisions)});
    }
  }

  // Replay gate: byte-identical decisions for every recorded batch.
  for (const Record& record : records) {
    const auto it = outcome.version_policy.find(record.version);
    EXPECT_TRUE(it != outcome.version_policy.end())
        << "batch pinned an unpublished version " << record.version;
    if (it == outcome.version_policy.end()) {
      continue;
    }
    EXPECT_EQ(record.decisions,
              serial_replay(ring[it->second], batch_window(record.window)))
        << "seed " << seed << ", version " << record.version;
  }

  // Accounting gates: attempts partition into successes and failures;
  // every success retired exactly one version; quiescent limbo drains.
  core.reclaim();
  outcome.stats = core.stats();
  EXPECT_EQ(outcome.stats.swaps + outcome.stats.swap_failed, kAttempts);
  EXPECT_EQ(outcome.stats.retired, outcome.stats.swaps);
  EXPECT_EQ(outcome.stats.reclaimed, outcome.stats.retired);
  EXPECT_EQ(outcome.stats.limbo, 0u);
  EXPECT_GT(outcome.stats.swaps, kAttempts / 2)
      << "the storm should mostly heal, not mostly fail";

  outcome.fires = plan.total_fires();
  outcome.hits = plan.total_hits();
  outcome.plan_json = plan.to_json();
  outcome.metrics_json = registry.snapshot().to_json();
  return outcome;
}

TEST(ChaosStorm, SeededStormsInjectHundredsOfFaultsWithZeroViolations) {
  const char* artifact_dir = std::getenv("DFW_CHAOS_ARTIFACTS");
  std::uint64_t total_fires = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const StormOutcome outcome = run_serial_storm(seed);
    EXPECT_GE(outcome.fires, 30u) << "seed " << seed << " barely faulted";
    total_fires += outcome.fires;
    if (artifact_dir != nullptr) {
      const std::filesystem::path dir(artifact_dir);
      std::filesystem::create_directories(dir);
      std::ofstream(dir / ("chaos_seed" + std::to_string(seed) +
                           ".fault.json"))
          << outcome.plan_json;
      std::ofstream(dir / ("chaos_seed" + std::to_string(seed) +
                           ".metrics.json"))
          << outcome.metrics_json;
    }
  }
  EXPECT_GE(total_fires, 200u) << "the chaos gate wants >= 200 faults";
}

TEST(ChaosStorm, SameSeedReproducesTheSameMetrics) {
  const StormOutcome a = run_serial_storm(2);
  const StormOutcome b = run_serial_storm(2);
  EXPECT_EQ(a.fires, b.fires);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.stats.swaps, b.stats.swaps);
  EXPECT_EQ(a.stats.swap_retries, b.stats.swap_retries);
  EXPECT_EQ(a.stats.swap_failed, b.stats.swap_failed);
  EXPECT_EQ(a.version_policy, b.version_policy);
  EXPECT_EQ(a.plan_json, b.plan_json);
}

// The concurrent variant (the TSan target): readers classify while the
// writer swaps through a faulted, self-healing pipeline. Writer-side
// hit counts interleave nondeterministically, so the gate here is the
// replay invariant and version accounting, not metric equality.
TEST(ChaosStorm, ConcurrentReadersSurviveAFaultedSwapStorm) {
  constexpr std::size_t kPolicies = 6;
  constexpr std::size_t kReaders = 2;
  constexpr std::size_t kBatchesPerReader = 40;
  constexpr std::size_t kBatchLen = 64;
  constexpr std::uint64_t kMinSwaps = 30;

  std::vector<Policy> ring;
  for (std::size_t i = 0; i < kPolicies; ++i) {
    ring.push_back(make_policy(20, 400 + i));
  }
  Rng rng(71);
  const std::vector<Packet> pool = synth_trace(ring[0], 2048, rng);
  const auto batch_window = [&](std::size_t i) {
    const std::size_t start = (i * 97) % (pool.size() - kBatchLen);
    return std::span<const Packet>(pool).subspan(start, kBatchLen);
  };

  FaultPlan plan(5, {prob_spec(fault::sites::kSwapCompile, 0.2),
                     prob_spec(fault::sites::kSwapPublish, 0.1)});

  ServeOptions options = chaos_options(&plan, nullptr);
  options.swap_max_retries = 3;
  ServeCore core(ring[0], options);

  std::map<std::uint64_t, std::size_t> version_policy;
  version_policy[1] = 0;
  std::mutex version_mu;

  std::atomic<bool> readers_done{false};
  std::thread writer([&] {
    std::uint64_t swaps = 0;
    std::size_t next = 1;
    while (swaps < kMinSwaps || !readers_done.load()) {
      const std::size_t idx = next++ % kPolicies;
      const Result<std::uint64_t> r = core.swap(ring[idx]);
      if (!r.ok()) {
        continue;  // exhausted healing is legal under the storm
      }
      {
        std::lock_guard<std::mutex> lock(version_mu);
        version_policy[r.value()] = idx;
      }
      ++swaps;
    }
  });

  struct Record {
    std::uint64_t version;
    std::size_t batch;
    std::vector<Decision> decisions;
  };
  std::vector<std::vector<Record>> records(kReaders);
  std::vector<std::thread> readers;
  std::atomic<std::size_t> readers_finished{0};
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto shard = core.shard();
      for (std::size_t i = 0; i < kBatchesPerReader; ++i) {
        const std::size_t batch = r * kBatchesPerReader + i;
        BatchResult result = shard.classify(batch_window(batch));
        ASSERT_EQ(result.status, ErrorCode::kOk);
        records[r].push_back(
            {result.version, batch, std::move(result.decisions)});
      }
      if (readers_finished.fetch_add(1) + 1 == kReaders) {
        readers_done.store(true);
      }
    });
  }
  for (std::thread& t : readers) {
    t.join();
  }
  writer.join();

  for (const auto& reader_records : records) {
    for (const Record& record : reader_records) {
      const auto it = version_policy.find(record.version);
      ASSERT_NE(it, version_policy.end())
          << "batch pinned an unpublished (torn?) version "
          << record.version;
      EXPECT_EQ(record.decisions,
                serial_replay(ring[it->second], batch_window(record.batch)));
    }
  }

  core.reclaim();
  const ServeStats stats = core.stats();
  EXPECT_GE(stats.swaps, kMinSwaps);
  EXPECT_EQ(stats.retired, stats.swaps);
  EXPECT_EQ(stats.reclaimed, stats.retired);
  EXPECT_EQ(stats.limbo, 0u);
  EXPECT_GT(plan.total_fires(), 0u) << "the storm must actually fault";
}

// -- Snapshot round-trips -----------------------------------------------------

constexpr ClassifierBackendKind kAllBackends[] = {
    ClassifierBackendKind::kFlatSlab,
    ClassifierBackendKind::kPrefixTrie,
    ClassifierBackendKind::kBitParallel,
};

TEST(Snapshot, RoundTripsByteIdenticallyOnEveryBackend) {
  for (const ClassifierBackendKind backend : kAllBackends) {
    ServeOptions options;
    options.backend = backend;
    ServeCore core(make_policy(15, 61), options);
    ASSERT_TRUE(core.swap(make_policy(15, 62)).ok());
    ASSERT_TRUE(core.swap(make_policy(15, 63)).ok());
    const Policy served = make_policy(15, 63);

    const std::string text = core.snapshot_text();
    auto data = serve::snapshot::decode(five_tuple_schema(),
                                        default_decisions(), text);
    EXPECT_EQ(data.sequence, 3u);
    EXPECT_EQ(data.backend, backend);

    // Determinism: the same served state snapshots to the same bytes.
    EXPECT_EQ(text, core.snapshot_text());

    ServeCore restored(std::move(data), options);
    EXPECT_EQ(restored.current_sequence(), 3u);
    EXPECT_EQ(restored.health().backend, backend);

    Rng rng(64);
    const std::vector<Packet> probes = synth_trace(served, 300, rng);
    const BatchResult before = core.classify_batch(probes);
    const BatchResult after = restored.classify_batch(probes);
    EXPECT_EQ(before.decisions, after.decisions)
        << to_string(backend) << ": restart must be byte-identical";
    EXPECT_EQ(after.decisions, serial_replay(served, probes));

    // Sequence numbering resumes, not restarts.
    const auto next = restored.swap(make_policy(15, 65));
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(next.value(), 4u);
  }
}

TEST(Snapshot, DecodeRejectsTruncationAndCorruption) {
  ServeCore core(make_policy(15, 66), ServeOptions{});
  const std::string text = core.snapshot_text();
  const Schema schema = five_tuple_schema();
  const DecisionSet& decisions = default_decisions();

  // Truncations at every granularity must throw a structured error.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, text.size() / 2, text.size() - 2}) {
    EXPECT_THROW(
        serve::snapshot::decode(schema, decisions, text.substr(0, keep)),
        Error)
        << "kept " << keep << " bytes";
  }

  // A flipped byte in the body is caught by the checksum.
  std::string flipped = text;
  flipped[text.size() / 2] ^= 0x20;
  try {
    serve::snapshot::decode(schema, decisions, flipped);
    FAIL() << "corrupt snapshot decoded";
  } catch (const Error& e) {
    EXPECT_TRUE(e.code() == ErrorCode::kInvalidInput ||
                e.code() == ErrorCode::kParseError)
        << to_string(e.code());
  }

  EXPECT_THROW(serve::snapshot::decode(schema, decisions, "dfws 9\n"),
               Error);
  EXPECT_THROW(serve::snapshot::decode(schema, decisions, "hello\n"), Error);
}

TEST(Snapshot, SaveAndLoadFaultSitesFire) {
  {
    FaultPlan plan(1, {count_spec(fault::sites::kSnapshotSave, 1)});
    ServeOptions options = chaos_options(&plan, nullptr);
    ServeCore core(make_policy(10, 67), options);
    EXPECT_THROW(core.snapshot_text(), Error);
    EXPECT_EQ(plan.total_fires(), 1u);
    // The failure is transient: the next save succeeds (single-shot
    // trigger) and the served version was never disturbed.
    EXPECT_FALSE(core.snapshot_text().empty());
  }
  {
    ServeCore core(make_policy(10, 68), ServeOptions{});
    const std::string text = core.snapshot_text();
    FaultPlan plan(1, {count_spec(fault::sites::kSnapshotLoad, 1)});
    EXPECT_THROW(serve::snapshot::decode(five_tuple_schema(),
                                         default_decisions(), text, nullptr,
                                         &plan),
                 Error);
  }
}

TEST(Snapshot, AtomicWriteRenamePublishesWholeFilesOnly) {
  const std::filesystem::path dir(::testing::TempDir());
  const std::string path = (dir / "chaos_atomic.dfws").string();
  serve::snapshot::write_atomic(path, "first\n");
  EXPECT_EQ(serve::snapshot::read_file(path), "first\n");
  serve::snapshot::write_atomic(path, "second\n");
  EXPECT_EQ(serve::snapshot::read_file(path), "second\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "the temp file must not linger";
  std::filesystem::remove(path);
}

// -- The serve CLI under snapshots --------------------------------------------

class ServeCliSnapshot : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) / "dfw_chaos_cli";
    std::filesystem::create_directories(dir_);
    policy_a_ = (dir_ / "a.pol").string();
    policy_b_ = (dir_ / "b.pol").string();
    snapshot_ = (dir_ / "state.dfws").string();
    std::ofstream(policy_a_) << "accept sip=10.0.0.0/8\ndiscard\n";
    std::ofstream(policy_b_) << "accept dport=25\ndiscard\n";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int run(const std::vector<std::string>& args, const std::string& input,
          std::string* out_text = nullptr, std::string* err_text = nullptr) {
    std::istringstream in(input);
    std::ostringstream out;
    std::ostringstream err;
    const int code = serve::run_serve_cli(args, in, out, err);
    if (out_text != nullptr) {
      *out_text = out.str();
    }
    if (err_text != nullptr) {
      *err_text = err.str();
    }
    return code;
  }

  std::filesystem::path dir_;
  std::string policy_a_;
  std::string policy_b_;
  std::string snapshot_;
};

TEST_F(ServeCliSnapshot, BootSwapRestartResumesTheSwappedVersion) {
  std::string out;
  ASSERT_EQ(run({"--snapshot=" + snapshot_, policy_a_},
                "swap " + policy_b_ + "\nquit\n", &out),
            0)
      << out;
  EXPECT_NE(out.find("swap ok version=2"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(snapshot_));

  // Restart: the daemon resumes the swapped version, not the boot file.
  out.clear();
  ASSERT_EQ(run({"--snapshot=" + snapshot_, policy_a_}, "health\nquit\n",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("serving version=2"), std::string::npos);
  EXPECT_NE(out.find("(restored)"), std::string::npos);
  EXPECT_NE(out.find("\"sequence\":2"), std::string::npos);
}

TEST_F(ServeCliSnapshot, CorruptSnapshotIsRefusedWithExitTwo) {
  ASSERT_EQ(run({"--snapshot=" + snapshot_, policy_a_}, "quit\n"), 0);
  const std::string text = serve::snapshot::read_file(snapshot_);

  // Truncated file: exit 2, structured message, no crash.
  std::ofstream(snapshot_, std::ios::binary)
      << text.substr(0, text.size() / 2);
  std::string err;
  EXPECT_EQ(run({"--snapshot=" + snapshot_, policy_a_}, "quit\n", nullptr,
                &err),
            2);
  EXPECT_NE(err.find("snapshot"), std::string::npos) << err;

  // Bit flip: same contract.
  std::string flipped = text;
  flipped[text.size() / 2] ^= 0x01;
  std::ofstream(snapshot_, std::ios::binary) << flipped;
  EXPECT_EQ(run({"--snapshot=" + snapshot_, policy_a_}, "quit\n"), 2);

  // Arbitrary garbage: same contract.
  std::ofstream(snapshot_, std::ios::binary) << "not a snapshot at all\n";
  EXPECT_EQ(run({"--snapshot=" + snapshot_, policy_a_}, "quit\n"), 2);
}

TEST_F(ServeCliSnapshot, HealthIntervalAndHealthCommandReport) {
  std::string out;
  ASSERT_EQ(run({"--health-interval=1", policy_a_},
                "reclaim\nhealth\nquit\n", &out),
            0)
      << out;
  // One health line per command (interval 1) plus the explicit command.
  std::size_t count = 0;
  for (std::size_t pos = 0;
       (pos = out.find("dfw-serve-health-v1", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_GE(count, 3u) << out;
}

}  // namespace
}  // namespace dfw
