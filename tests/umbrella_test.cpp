// Umbrella-header smoke test: one include pulls the whole API, and the
// headline pipeline runs. Also pins down cross-header consistency (the
// shape_all refinement property the N-way comparison relies on).

#include <gtest/gtest.h>

#include "dfw.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

TEST(Umbrella, HeadlinePipelineCompilesAndRuns) {
  const Schema schema = five_tuple_schema();
  const Policy a = parse_policy(schema, default_decisions(),
                                "discard sip=203.0.113.0/24\naccept\n");
  const Policy b = parse_policy(schema, default_decisions(),
                                "accept\n");
  const std::vector<Discrepancy> diffs = discrepancies(a, b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].decisions[0], kDiscard);
  EXPECT_EQ(diffs[0].decisions[1], kAccept);
}

TEST(Umbrella, ShapeAllSecondPassLeavesTheAnchorUntouched) {
  // The direct N-way comparison depends on pass 2 of shape_all never
  // modifying fdds[0] (the common refinement). Verify structurally.
  std::mt19937_64 rng(161);
  std::vector<Fdd> fdds;
  for (int i = 0; i < 4; ++i) {
    fdds.push_back(
        build_reduced_fdd(test::random_policy(test::tiny3(), 5, rng)));
  }
  shape_all(fdds);
  const Fdd anchor = fdds[0].clone();
  for (std::size_t i = 1; i < fdds.size(); ++i) {
    Fdd lhs = fdds[0].clone();
    Fdd rhs = fdds[i].clone();
    shape_pair(lhs, rhs);  // must be a no-op on both
    EXPECT_TRUE(structurally_equal(lhs, anchor));
    EXPECT_TRUE(structurally_equal(rhs, fdds[i]));
  }
}

}  // namespace
}  // namespace dfw
