// Mutation-operator tests for the effectiveness study (Section 8.1).

#include <gtest/gtest.h>

#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "synth/mutate.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

Policy small_synth(Rng& rng, std::size_t n = 20) {
  SynthConfig config;
  config.num_rules = n;
  return synth_policy(config, rng);
}

TEST(Mutate, InsertAtHeadGrowsPolicyByOne) {
  Rng rng(1);
  const Policy p = small_synth(rng);
  const auto mutant = mutate_policy(p, MutationKind::kInsertAtHead, rng);
  ASSERT_TRUE(mutant.has_value());
  EXPECT_EQ(mutant->size(), p.size() + 1);
  // The original rules follow unchanged.
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(mutant->rule(i + 1), p.rule(i));
  }
}

TEST(Mutate, DeleteRuleShrinksPolicyByOne) {
  Rng rng(2);
  const Policy p = small_synth(rng);
  const auto mutant = mutate_policy(p, MutationKind::kDeleteRule, rng);
  ASSERT_TRUE(mutant.has_value());
  EXPECT_EQ(mutant->size(), p.size() - 1);
  EXPECT_TRUE(mutant->last_rule_is_catch_all());
}

TEST(Mutate, FlipDecisionTouchesExactlyOneRule) {
  Rng rng(3);
  const Policy p = small_synth(rng);
  const auto mutant = mutate_policy(p, MutationKind::kFlipDecision, rng);
  ASSERT_TRUE(mutant.has_value());
  ASSERT_EQ(mutant->size(), p.size());
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!(mutant->rule(i) == p.rule(i))) {
      ++flipped;
      EXPECT_EQ(mutant->rule(i).conjuncts(), p.rule(i).conjuncts());
      EXPECT_NE(mutant->rule(i).decision(), p.rule(i).decision());
    }
  }
  EXPECT_EQ(flipped, 1u);
}

TEST(Mutate, SwapAdjacentPreservesMultiset) {
  Rng rng(4);
  const Policy p = small_synth(rng);
  const auto mutant = mutate_policy(p, MutationKind::kSwapAdjacent, rng);
  ASSERT_TRUE(mutant.has_value());
  EXPECT_EQ(mutant->size(), p.size());
  // Same rules, possibly different order; catch-all stays last.
  EXPECT_TRUE(mutant->last_rule_is_catch_all());
}

TEST(Mutate, WidenConjunctOnlyWidens) {
  Rng rng(5);
  const Policy p = small_synth(rng);
  const auto mutant = mutate_policy(p, MutationKind::kWidenConjunct, rng);
  if (!mutant.has_value()) {
    GTEST_SKIP() << "all sampled rules were wildcards";
  }
  ASSERT_EQ(mutant->size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!(mutant->rule(i) == p.rule(i))) {
      for (std::size_t f = 0; f < p.schema().field_count(); ++f) {
        EXPECT_TRUE(
            mutant->rule(i).conjunct(f).contains(p.rule(i).conjunct(f)));
      }
    }
  }
}

TEST(Mutate, MutantsStayComprehensive) {
  Rng rng(6);
  const Policy p = small_synth(rng);
  for (const MutationKind kind :
       {MutationKind::kInsertAtHead, MutationKind::kDeleteRule,
        MutationKind::kFlipDecision, MutationKind::kSwapAdjacent,
        MutationKind::kWidenConjunct}) {
    const auto mutant = mutate_policy(p, kind, rng);
    if (mutant.has_value()) {
      Fdd fdd = build_fdd(*mutant);
      EXPECT_NO_THROW(fdd.validate()) << to_string(kind);
    }
  }
}

TEST(Mutate, ComparisonPipelineDetectsSemanticMutants) {
  // The core effectiveness claim: every semantics-changing mutation shows
  // up as at least one discrepancy, and every discrepancy is genuine.
  Rng rng(7);
  const Policy p = small_synth(rng, 15);
  int semantic = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto kind = static_cast<MutationKind>(trial % 5);
    const auto mutant = mutate_policy(p, kind, rng);
    if (!mutant.has_value()) {
      continue;
    }
    const std::vector<Discrepancy> diffs = discrepancies(p, *mutant);
    for (const Discrepancy& d : diffs) {
      EXPECT_NE(d.decisions[0], d.decisions[1]);
    }
    if (!diffs.empty()) {
      ++semantic;
    }
  }
  EXPECT_GT(semantic, 0);
}

TEST(Mutate, InapplicableKindsReturnNullopt) {
  const Schema s = five_tuple_schema();
  const Policy one_rule(s, {Rule::catch_all(s, kAccept)});
  Rng rng(8);
  EXPECT_FALSE(
      mutate_policy(one_rule, MutationKind::kDeleteRule, rng).has_value());
  EXPECT_FALSE(
      mutate_policy(one_rule, MutationKind::kFlipDecision, rng).has_value());
  EXPECT_FALSE(
      mutate_policy(one_rule, MutationKind::kSwapAdjacent, rng).has_value());
  EXPECT_FALSE(
      mutate_policy(one_rule, MutationKind::kWidenConjunct, rng).has_value());
}

TEST(Mutate, KindNames) {
  EXPECT_STREQ(to_string(MutationKind::kInsertAtHead), "insert-at-head");
  EXPECT_STREQ(to_string(MutationKind::kDeleteRule), "delete-rule");
  EXPECT_STREQ(to_string(MutationKind::kFlipDecision), "flip-decision");
  EXPECT_STREQ(to_string(MutationKind::kSwapAdjacent), "swap-adjacent");
  EXPECT_STREQ(to_string(MutationKind::kWidenConjunct), "widen-conjunct");
}

}  // namespace
}  // namespace dfw
