// FDD serialization tests: deterministic round-trips, schema validation
// on load, and rejection of malformed or corrupted input.

#include <gtest/gtest.h>

#include "fdd/construct.hpp"
#include "fdd/serialize.hpp"
#include "rt/govern.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

TEST(Serialize, RoundTripsRandomDiagrams) {
  std::mt19937_64 rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const Policy p = test::random_policy(tiny3(), 5, rng);
    const Fdd original = build_reduced_fdd(p);
    const std::string text = serialize_fdd(original);
    const Fdd loaded = deserialize_fdd(tiny3(), text);
    EXPECT_TRUE(structurally_equal(original, loaded));
    EXPECT_TRUE(test::fdd_matches_policy(loaded, p));
  }
}

TEST(Serialize, DeterministicOutput) {
  std::mt19937_64 rng(102);
  const Policy p = test::random_policy(tiny2(), 4, rng);
  const Fdd fdd = build_reduced_fdd(p);
  EXPECT_EQ(serialize_fdd(fdd), serialize_fdd(fdd.clone()));
}

TEST(Serialize, ConstantDiagram) {
  const Fdd fdd = Fdd::constant(tiny2(), kDiscard);
  const std::string text = serialize_fdd(fdd);
  EXPECT_EQ(text, "dfdd 1\nschema 2\nT 1\n");
  const Fdd loaded = deserialize_fdd(tiny2(), text);
  EXPECT_TRUE(structurally_equal(fdd, loaded));
}

TEST(Serialize, PartialDiagramsAllowed) {
  const Schema s = tiny2();
  const Policy p(
      s, {Rule(s, {IntervalSet(Interval(0, 3)), IntervalSet(Interval(0, 7))},
               kAccept)});
  const Fdd partial = build_fdd(p);
  const Fdd loaded = deserialize_fdd(s, serialize_fdd(partial));
  EXPECT_TRUE(structurally_equal(partial, loaded));
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_THROW(deserialize_fdd(tiny2(), "dfdd 2\nschema 2\nT 0\n"),
               std::invalid_argument);
  EXPECT_THROW(deserialize_fdd(tiny2(), ""), std::invalid_argument);
}

TEST(Serialize, RejectsSchemaMismatch) {
  const std::string text = serialize_fdd(Fdd::constant(tiny3(), kAccept));
  EXPECT_THROW(deserialize_fdd(tiny2(), text), std::invalid_argument);
}

TEST(Serialize, RejectsMalformedBodies) {
  const char* cases[] = {
      "dfdd 1\nschema 2\n",                       // missing node
      "dfdd 1\nschema 2\nX 0\n",                  // unknown tag
      "dfdd 1\nschema 2\nN 0\n",                  // node without edge count
      "dfdd 1\nschema 2\nN 0 1\nT 0\n",           // edge line missing
      "dfdd 1\nschema 2\nN 0 1\nE 5:2\nT 0\n",    // inverted interval
      "dfdd 1\nschema 2\nN 0 0\n",                // zero edges
      "dfdd 1\nschema 2\nT 0\nT 0\n",             // trailing content
      "dfdd 1\nschema 2\nT 99999\n",              // decision out of range
      "dfdd 1\nschema 2\nN 0 1\nE 0-7\nT 0\n",    // wrong separator
  };
  for (const char* text : cases) {
    EXPECT_THROW(deserialize_fdd(tiny2(), text), std::invalid_argument)
        << text;
  }
}

TEST(Serialize, RejectsSemanticViolations) {
  // Structurally well-formed but violates FDD invariants for the schema.
  const char* overlapping =
      "dfdd 1\nschema 2\nN 0 2\nE 0:4\nT 0\nE 4:7\nT 1\n";  // overlap at 4
  EXPECT_THROW(deserialize_fdd(tiny2(), overlapping), std::logic_error);
  const char* bad_field =
      "dfdd 1\nschema 2\nN 5 1\nE 0:7\nT 0\n";  // field index out of range
  EXPECT_THROW(deserialize_fdd(tiny2(), bad_field), std::logic_error);
  const char* domain_escape =
      "dfdd 1\nschema 2\nN 0 1\nE 0:99\nT 0\n";  // label exceeds domain
  EXPECT_THROW(deserialize_fdd(tiny2(), domain_escape), std::logic_error);
}

TEST(Serialize, RejectsHostileCounts) {
  // Counts wildly larger than the input must fail fast (invalid_argument),
  // not reserve gigabytes or throw length_error.
  const char* reserve_bomb =
      "dfdd 1\nschema 2\nN 0 18446744073709551615\nE 0:7\nT 0\n";
  EXPECT_THROW(deserialize_fdd(tiny2(), reserve_bomb), std::invalid_argument);
  const char* dag_bomb = "dfdd 2\nschema 2\nnodes 99999999999\nT 0 0\nroot 0\n";
  EXPECT_THROW(deserialize_fdd(tiny2(), dag_bomb), std::invalid_argument);
}

TEST(Serialize, RejectsDeepNesting) {
  // Field order is enforced while parsing, so a deep stack of same-field
  // nodes is rejected after two levels instead of recursing per line.
  std::string text = "dfdd 1\nschema 2\n";
  for (int i = 0; i < 200000; ++i) {
    text += "N 0 1\nE 0:7\n";
  }
  text += "T 0\n";
  EXPECT_THROW(deserialize_fdd(tiny2(), text), std::invalid_argument);
}

TEST(SerializeDag, RoundTripsRandomDiagrams) {
  std::mt19937_64 rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    const Policy p = test::random_policy(tiny3(), 5, rng);
    const Fdd original = build_reduced_fdd(p);
    const std::string text = serialize_fdd_dag(original);
    const Fdd loaded = deserialize_fdd(tiny3(), text);
    EXPECT_TRUE(structurally_equal(original, loaded));
    EXPECT_TRUE(test::fdd_matches_policy(loaded, p));
  }
}

TEST(SerializeDag, DeterministicAndSharing) {
  std::mt19937_64 rng(104);
  const Policy p = test::random_policy(tiny3(), 6, rng);
  const Fdd fdd = build_reduced_fdd(p);
  EXPECT_EQ(serialize_fdd_dag(fdd), serialize_fdd_dag(fdd.clone()));
  // Shared subdiagrams are written once, so the DAG text never exceeds the
  // tree text (up to the fixed header difference).
  EXPECT_LE(serialize_fdd_dag(fdd).size(),
            serialize_fdd(fdd).size() + 64);
}

TEST(SerializeDag, RejectsIdViolations) {
  // Duplicate node id.
  EXPECT_THROW(
      deserialize_fdd(tiny2(), "dfdd 2\nschema 2\nnodes 2\nT 0 0\nT 0 1\n"
                               "root 0\n"),
      std::invalid_argument);
  // Dangling child id.
  EXPECT_THROW(
      deserialize_fdd(tiny2(), "dfdd 2\nschema 2\nnodes 2\nT 0 0\n"
                               "N 1 0 1\nE 7 0:7\nroot 1\n"),
      std::invalid_argument);
  // Forward reference (child defined after its parent).
  EXPECT_THROW(
      deserialize_fdd(tiny2(), "dfdd 2\nschema 2\nnodes 2\n"
                               "N 1 0 1\nE 0 0:7\nT 0 0\nroot 1\n"),
      std::invalid_argument);
  // Dangling root id.
  EXPECT_THROW(
      deserialize_fdd(tiny2(),
                      "dfdd 2\nschema 2\nnodes 1\nT 0 0\nroot 5\n"),
      std::invalid_argument);
  // Field order violation between records.
  EXPECT_THROW(
      deserialize_fdd(tiny2(), "dfdd 2\nschema 2\nnodes 3\nT 0 0\n"
                               "N 1 1 1\nE 0 0:7\n"
                               "N 2 1 1\nE 1 0:7\nroot 2\n"),
      std::invalid_argument);
  // Header without the required sections (regression for RejectsBadHeader:
  // "dfdd 2" alone is no longer an unknown version, but a v2 body is still
  // required).
  EXPECT_THROW(deserialize_fdd(tiny2(), "dfdd 2\nschema 2\nT 0\n"),
               std::invalid_argument);
}

TEST(SerializeDag, GovernedExpansionBomb) {
  // A 16-record DAG describing a 2^16-leaf tree: every nonterminal fans
  // out twice to the same child. Ungoverned loads hit the built-in cap
  // only far later, but a tight node budget cuts expansion off early with
  // the structured error.
  std::string text = "dfdd 2\nschema 2\nnodes 3\nT 0 0\n";
  // tiny2 has 2 fields; keep the chain within the schema: field 0 -> 1.
  text += "N 1 1 2\nE 0 0:3\nE 0 4:7\n";
  text += "N 2 0 2\nE 1 0:3\nE 1 4:7\n";
  text += "root 2\n";
  const Fdd loaded = deserialize_fdd(tiny2(), text);  // small: expands fine
  EXPECT_EQ(subtree_node_count(loaded.root()), 7u);

  RunContext ctx = RunContext::with_budgets({.max_nodes = 3});
  try {
    deserialize_fdd(tiny2(), text, &ctx);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNodeBudgetExceeded);
  }
}

}  // namespace
}  // namespace dfw
