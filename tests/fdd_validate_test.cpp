// FDD invariant checking: validate() must pinpoint each violated property
// (consistency, completeness, ordering, domain containment), and accept
// hand-built diagrams that satisfy all of them.

#include <gtest/gtest.h>

#include "fdd/fdd.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;

std::unique_ptr<FddNode> leaf(Decision d) {
  return FddNode::make_terminal(d);
}

TEST(FddValidate, AcceptsWellFormedDiagram) {
  auto root = FddNode::make_internal(0);
  auto y0 = FddNode::make_internal(1);
  y0->edges.emplace_back(IntervalSet(Interval(0, 7)), leaf(kAccept));
  root->edges.emplace_back(IntervalSet(Interval(0, 3)), std::move(y0));
  auto y1 = FddNode::make_internal(1);
  y1->edges.emplace_back(IntervalSet(Interval(0, 2)), leaf(kDiscard));
  y1->edges.emplace_back(IntervalSet(Interval(3, 7)), leaf(kAccept));
  root->edges.emplace_back(IntervalSet(Interval(4, 7)), std::move(y1));
  const Fdd fdd(tiny2(), std::move(root));
  fdd.validate();
  EXPECT_EQ(fdd.evaluate({5, 1}), kDiscard);
}

TEST(FddValidate, DetectsConsistencyViolation) {
  auto root = FddNode::make_internal(0);
  root->edges.emplace_back(IntervalSet(Interval(0, 4)), leaf(kAccept));
  root->edges.emplace_back(IntervalSet(Interval(4, 7)), leaf(kDiscard));
  const Fdd fdd(Schema({{"x", Interval(0, 7), FieldKind::kInteger}}),
                std::move(root));
  EXPECT_THROW(fdd.validate(), std::logic_error);
}

TEST(FddValidate, DetectsCompletenessViolation) {
  auto root = FddNode::make_internal(0);
  root->edges.emplace_back(IntervalSet(Interval(0, 4)), leaf(kAccept));
  const Fdd fdd(Schema({{"x", Interval(0, 7), FieldKind::kInteger}}),
                std::move(root));
  EXPECT_THROW(fdd.validate(), std::logic_error);
  fdd.validate(/*require_complete=*/false);
}

TEST(FddValidate, DetectsFieldOrderViolation) {
  // y above x violates the schema's total order (Definition 4.1).
  auto root = FddNode::make_internal(1);
  auto child = FddNode::make_internal(0);
  child->edges.emplace_back(IntervalSet(Interval(0, 7)), leaf(kAccept));
  root->edges.emplace_back(IntervalSet(Interval(0, 7)), std::move(child));
  const Fdd fdd(tiny2(), std::move(root));
  EXPECT_THROW(fdd.validate(), std::logic_error);
}

TEST(FddValidate, DetectsRepeatedFieldOnPath) {
  auto root = FddNode::make_internal(0);
  auto child = FddNode::make_internal(0);  // same field again
  child->edges.emplace_back(IntervalSet(Interval(0, 7)), leaf(kAccept));
  root->edges.emplace_back(IntervalSet(Interval(0, 7)), std::move(child));
  const Fdd fdd(tiny2(), std::move(root));
  EXPECT_THROW(fdd.validate(), std::logic_error);
}

TEST(FddValidate, DetectsDomainEscape) {
  auto root = FddNode::make_internal(0);
  root->edges.emplace_back(IntervalSet(Interval(0, 9)), leaf(kAccept));
  const Fdd fdd(Schema({{"x", Interval(0, 7), FieldKind::kInteger}}),
                std::move(root));
  EXPECT_THROW(fdd.validate(), std::logic_error);
}

TEST(FddValidate, DetectsEmptyNonterminal) {
  auto root = FddNode::make_internal(0);
  const Fdd fdd(tiny2(), std::move(root));
  EXPECT_THROW(fdd.validate(), std::logic_error);
}

TEST(FddValidate, DetectsUnknownFieldIndex) {
  auto root = FddNode::make_internal(5);
  root->edges.emplace_back(IntervalSet(Interval(0, 7)), leaf(kAccept));
  const Fdd fdd(tiny2(), std::move(root));
  EXPECT_THROW(fdd.validate(), std::logic_error);
}

TEST(FddValidate, ConstantFddIsValid) {
  const Fdd fdd = Fdd::constant(tiny2(), kDiscard);
  fdd.validate();
  EXPECT_EQ(fdd.evaluate({0, 0}), kDiscard);
  EXPECT_EQ(fdd.path_count(), 1u);
}

TEST(FddValidate, NullRootRejected) {
  EXPECT_THROW(Fdd(tiny2(), nullptr), std::invalid_argument);
}

TEST(FddValidate, EvaluateRejectsWrongArity) {
  const Fdd fdd = Fdd::constant(tiny2(), kAccept);
  EXPECT_THROW(fdd.evaluate({1}), std::invalid_argument);
}

TEST(FddValidate, SemiIsomorphismIgnoresDecisionsOnly) {
  auto make = [](Decision left, Decision right) {
    auto root = FddNode::make_internal(0);
    root->edges.emplace_back(IntervalSet(Interval(0, 3)), leaf(left));
    root->edges.emplace_back(IntervalSet(Interval(4, 7)), leaf(right));
    return Fdd(Schema({{"x", Interval(0, 7), FieldKind::kInteger}}),
               std::move(root));
  };
  EXPECT_TRUE(semi_isomorphic(make(kAccept, kAccept),
                              make(kDiscard, kAccept)));
  EXPECT_TRUE(structurally_equal(make(kAccept, kDiscard),
                                 make(kAccept, kDiscard)));
  EXPECT_FALSE(structurally_equal(make(kAccept, kDiscard),
                                  make(kDiscard, kDiscard)));
}

}  // namespace
}  // namespace dfw
