// Field-order permutation tests (Section 7.2): semantics preservation
// under the packet bijection, round-trip through the inverse, and the
// paper's recipe for comparing designs made over different field orders.

#include <gtest/gtest.h>

#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fw/permute.hpp"
#include "gen/generate.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny3;

TEST(Permute, SchemaReordersFields) {
  const Schema s = tiny3();
  const Schema p = permute_schema(s, {2, 0, 1});
  EXPECT_EQ(p.field(0).name, "z");
  EXPECT_EQ(p.field(1).name, "x");
  EXPECT_EQ(p.field(2).name, "y");
  EXPECT_EQ(p.domain(1), s.domain(0));
}

TEST(Permute, RejectsNonPermutations) {
  const Schema s = tiny3();
  EXPECT_THROW(permute_schema(s, {0, 1}), std::invalid_argument);
  EXPECT_THROW(permute_schema(s, {0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(permute_schema(s, {0, 1, 3}), std::invalid_argument);
}

TEST(Permute, PolicySemanticsPreservedUnderBijection) {
  std::mt19937_64 rng(17);
  const std::vector<std::size_t> order = {2, 0, 1};
  for (int trial = 0; trial < 20; ++trial) {
    const Policy p = test::random_policy(tiny3(), 5, rng);
    const Policy q = permute_policy(p, order);
    for (const Packet& pkt : test::all_packets(tiny3())) {
      EXPECT_EQ(p.evaluate(pkt), q.evaluate(permute_packet(pkt, order)));
    }
  }
}

TEST(Permute, InverseRoundTrips) {
  std::mt19937_64 rng(18);
  const std::vector<std::size_t> order = {1, 2, 0};
  const std::vector<std::size_t> inverse = inverse_order(order);
  const Policy p = test::random_policy(tiny3(), 5, rng);
  const Policy roundtrip = permute_policy(permute_policy(p, order), inverse);
  ASSERT_EQ(roundtrip.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(roundtrip.rule(i), p.rule(i));
  }
  const Packet pkt = {3, 2, 1};
  EXPECT_EQ(permute_packet(permute_packet(pkt, order), inverse), pkt);
}

// Section 7.2's scenario: team A designs an FDD ordered x,y,z; team B
// designs one ordered z,x,y. Recipe: generate rules from B's diagram,
// permute them into A's order, construct, and compare as usual.
TEST(Permute, DifferentFieldOrdersCompareCorrectly) {
  std::mt19937_64 rng(19);
  const std::vector<std::size_t> b_order = {2, 0, 1};
  for (int trial = 0; trial < 10; ++trial) {
    const Policy a = test::random_policy(tiny3(), 5, rng);
    // B's design lives in its own field order.
    const Policy b_native =
        permute_policy(test::random_policy(tiny3(), 5, rng), b_order);
    const Fdd b_fdd = build_reduced_fdd(b_native);  // B's ordered FDD

    // Recipe: rules from B's diagram, then into A's order.
    const Policy b_rules = generate_policy(b_fdd);
    const Policy b_in_a_order =
        permute_policy(b_rules, inverse_order(b_order));

    const std::vector<Discrepancy> diffs = discrepancies(a, b_in_a_order);
    // Brute-force ground truth under the bijection.
    for (const Packet& pkt : test::all_packets(tiny3())) {
      const Decision da = a.evaluate(pkt);
      const Decision db = b_native.evaluate(permute_packet(pkt, b_order));
      bool covered = false;
      for (const Discrepancy& d : diffs) {
        bool inside = true;
        for (std::size_t f = 0; f < pkt.size(); ++f) {
          inside = inside && d.conjuncts[f].contains(pkt[f]);
        }
        covered = covered || inside;
      }
      EXPECT_EQ(covered, da != db);
    }
  }
}

}  // namespace
}  // namespace dfw
