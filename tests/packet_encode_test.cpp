// Bit-level packet encoding tests: interval threshold circuits, rule and
// policy encodings against brute force, and the FDD-vs-BDD diff agreement
// that underpins the Section 7.5 baseline comparison.

#include <gtest/gtest.h>

#include "bdd/packet_encode.hpp"
#include "fdd/compare.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

// Builds the cube for a concrete packet and tests membership.
bool bdd_accepts(BddManager& mgr, const BitLayout& layout, BddRef f,
                 const Packet& p) {
  BddRef cube = mgr.one();
  for (std::size_t field = 0; field < p.size(); ++field) {
    for (std::size_t bit = 0; bit < layout.width[field]; ++bit) {
      const std::size_t var =
          layout.offset[field] + layout.width[field] - 1 - bit;
      const BddRef literal = ((p[field] >> bit) & 1)
                                 ? mgr.var(var)
                                 : mgr.lnot(mgr.var(var));
      cube = mgr.land(cube, literal);
    }
  }
  return mgr.land(f, cube) != mgr.zero();
}

TEST(PacketEncode, LayoutAssignsDisjointBlocks) {
  const BitLayout layout = layout_for(tiny3());
  // Domains [0,5], [0,3], [0,3] need 3, 2, 2 bits.
  ASSERT_EQ(layout.width.size(), 3u);
  EXPECT_EQ(layout.width[0], 3u);
  EXPECT_EQ(layout.width[1], 2u);
  EXPECT_EQ(layout.width[2], 2u);
  EXPECT_EQ(layout.offset[0], 0u);
  EXPECT_EQ(layout.offset[1], 3u);
  EXPECT_EQ(layout.offset[2], 5u);
  EXPECT_EQ(layout.total_bits, 7u);
}

TEST(PacketEncode, FiveTupleLayoutIs104Bits) {
  const BitLayout layout = layout_for(five_tuple_schema());
  EXPECT_EQ(layout.total_bits, 32u + 32 + 16 + 16 + 8);
}

TEST(PacketEncode, IntervalEncodingMatchesMembership) {
  const Schema schema = tiny2();
  const BitLayout layout = layout_for(schema);
  std::mt19937_64 rng(88);
  for (int trial = 0; trial < 30; ++trial) {
    BddManager mgr(layout.total_bits);
    const Interval iv = test::random_interval(schema.domain(0), rng);
    const BddRef f = encode_interval(mgr, layout, 0, iv);
    for (Value v = 0; v <= schema.domain(0).hi(); ++v) {
      const Packet p = {v, 0};
      EXPECT_EQ(bdd_accepts(mgr, layout, f, p), iv.contains(v))
          << "interval " << iv.to_string() << " value " << v;
    }
  }
  BddManager mgr(layout.total_bits);
  EXPECT_THROW(encode_interval(mgr, layout, 9, Interval(0, 1)),
               std::out_of_range);
}

TEST(PacketEncode, PolicyEncodingMatchesFirstMatch) {
  std::mt19937_64 rng(89);
  const Schema schema = tiny3();
  const BitLayout layout = layout_for(schema);
  for (int trial = 0; trial < 15; ++trial) {
    const Policy p = test::random_policy(schema, 5, rng);
    BddManager mgr(layout.total_bits);
    const BddRef f = encode_policy(mgr, layout, p);
    for (const Packet& pkt : test::all_packets(schema)) {
      EXPECT_EQ(bdd_accepts(mgr, layout, f, pkt),
                p.evaluate(pkt) == kAccept);
    }
  }
}

TEST(PacketEncode, DiffAgreesWithFddComparison) {
  std::mt19937_64 rng(90);
  const Schema schema = tiny3();
  const BitLayout layout = layout_for(schema);
  for (int trial = 0; trial < 10; ++trial) {
    const Policy pa = test::random_policy(schema, 5, rng);
    const Policy pb = test::random_policy(schema, 5, rng);
    BddManager mgr(layout.total_bits);
    const BddRef diff = policy_diff(mgr, layout, pa, pb);
    // Number of differing packets must agree with the FDD pipeline.
    // (Domains here are exact powers of two except field 0: [0,5] over
    // 3 bits leaves values 6-7 unused, so count by brute force instead.)
    std::uint64_t fdd_count = 0;
    for (const Packet& pkt : test::all_packets(schema)) {
      const bool accept_a = pa.evaluate(pkt) == kAccept;
      const bool accept_b = pb.evaluate(pkt) == kAccept;
      if (accept_a != accept_b) {
        ++fdd_count;
        EXPECT_TRUE(bdd_accepts(mgr, layout, diff, pkt));
      } else {
        EXPECT_FALSE(bdd_accepts(mgr, layout, diff, pkt));
      }
    }
    if (fdd_count == 0) {
      EXPECT_EQ(diff, mgr.zero());
    }
  }
}

TEST(PacketEncode, MultiRunConjunctsEncode) {
  const Schema schema = tiny2();
  const BitLayout layout = layout_for(schema);
  BddManager mgr(layout.total_bits);
  const Rule r(schema,
               {IntervalSet{Interval(0, 1), Interval(6, 7)},
                IntervalSet(Interval(0, 7))},
               kAccept);
  const BddRef f = encode_predicate(mgr, layout, r);
  EXPECT_TRUE(bdd_accepts(mgr, layout, f, {0, 3}));
  EXPECT_TRUE(bdd_accepts(mgr, layout, f, {7, 3}));
  EXPECT_FALSE(bdd_accepts(mgr, layout, f, {3, 3}));
}

}  // namespace
}  // namespace dfw
