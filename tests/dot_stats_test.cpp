// Dedicated tests for the Graphviz exporter and the statistics module.

#include <gtest/gtest.h>

#include "fdd/construct.hpp"
#include "fdd/dot.hpp"
#include "fdd/stats.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

TEST(Dot, TerminalOnlyDiagram) {
  const std::string dot =
      to_dot(Fdd::constant(tiny2(), kAccept), default_decisions());
  EXPECT_NE(dot.find("digraph fdd {"), std::string::npos);
  EXPECT_NE(dot.find("[shape=box, label=\"accept\"]"), std::string::npos);
  EXPECT_EQ(dot.find("->"), std::string::npos);  // no edges
}

TEST(Dot, NodeAndEdgeCountsMatchDiagram) {
  std::mt19937_64 rng(131);
  const Policy p = test::random_policy(tiny3(), 5, rng);
  const Fdd fdd = build_reduced_fdd(p);
  const FddStats stats = compute_stats(fdd);
  const std::string dot = to_dot(fdd, default_decisions());
  // One "nK [" declaration per node, one "->" per edge.
  std::size_t decls = 0;
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find(" [shape="); pos != std::string::npos;
       pos = dot.find(" [shape=", pos + 1)) {
    ++decls;
  }
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(decls, stats.nodes);
  EXPECT_EQ(arrows, stats.edges);
}

TEST(Dot, EdgeLabelsUseFieldAwareFormatting) {
  const Schema s = five_tuple_schema();
  const Policy p(s,
                 {Rule(s,
                       {IntervalSet(Interval(0, UINT32_MAX)),
                        IntervalSet(Interval(0, UINT32_MAX)),
                        IntervalSet(Interval(0, 65535)),
                        IntervalSet(Interval::point(25)),
                        IntervalSet(Interval::point(6))},
                       kAccept),
                  Rule::catch_all(s, kDiscard)});
  const std::string dot = to_dot(build_fdd(p), default_decisions());
  EXPECT_NE(dot.find("label=\"25\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"tcp\""), std::string::npos);
}

TEST(Stats, CountsAgreeWithNodeHelpers) {
  std::mt19937_64 rng(132);
  for (int trial = 0; trial < 10; ++trial) {
    const Policy p = test::random_policy(tiny3(), 5, rng);
    const Fdd fdd = build_reduced_fdd(p);
    const FddStats stats = compute_stats(fdd);
    EXPECT_EQ(stats.nodes, fdd.node_count());
    EXPECT_EQ(stats.paths, fdd.path_count());
    EXPECT_EQ(stats.terminals, stats.paths);  // trees: one terminal/path
    EXPECT_EQ(stats.edges, stats.nodes - 1);  // trees: |E| = |V| - 1
    EXPECT_LE(stats.depth, tiny3().field_count() + 1);
    EXPECT_GE(stats.depth, 1u);
  }
}

TEST(Stats, ConstantDiagram) {
  const FddStats stats = compute_stats(Fdd::constant(tiny2(), kDiscard));
  EXPECT_EQ(stats.nodes, 1u);
  EXPECT_EQ(stats.terminals, 1u);
  EXPECT_EQ(stats.edges, 0u);
  EXPECT_EQ(stats.paths, 1u);
  EXPECT_EQ(stats.depth, 1u);
}

TEST(Stats, ToStringListsEveryMeasure) {
  const std::string text =
      to_string(compute_stats(Fdd::constant(tiny2(), kAccept)));
  for (const char* key :
       {"nodes=", "terminals=", "edges=", "paths=", "depth="}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace dfw
