// src/simplify: semantics-preserving simplification. Hand-built cases pin
// each transform (dead elimination, adjacent merge, run coalescing); a
// randomized harness checks soundness by brute force on tiny schemas and
// by canonical-FDD identity on the real corpus and on synthetic fleets;
// governance tests pin the fail-safe contract (a budget breach hands back
// the ORIGINAL policy, marked).

#include "simplify/simplify.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "adapters/cisco.hpp"
#include "adapters/iptables.hpp"
#include "fdd/arena.hpp"
#include "fdd/compare.hpp"
#include "fw/parser.hpp"
#include "obs/metrics.hpp"
#include "synth/synth.hpp"
#include "test_util.hpp"

#ifndef DFW_CORPUS_DIR
#error "DFW_CORPUS_DIR must point at tests/corpus (set by CMake)"
#endif

namespace dfw {
namespace {

using test::all_packets;
using test::random_policy;
using test::tiny2;
using test::tiny3;

// ---------------------------------------------------------------------------
// Helpers

Rule make_rule(const Schema& schema, std::vector<IntervalSet> conjuncts,
               Decision decision) {
  return Rule(schema, std::move(conjuncts), decision);
}

/// Brute-force equivalence on a small universe: same first-match decision
/// — including the same fall-through set — for every packet.
void expect_same_mapping(const Policy& a, const Policy& b) {
  for (const Packet& p : all_packets(a.schema())) {
    const auto ia = a.first_match(p);
    const auto ib = b.first_match(p);
    ASSERT_EQ(ia.has_value(), ib.has_value());
    if (ia.has_value()) {
      EXPECT_EQ(a.rule(*ia).decision(), b.rule(*ib).decision());
    }
  }
}

/// Independent canonical-FDD identity check (exact for non-comprehensive
/// policies too): a fresh arena, not the one the pass proved in.
bool canonically_equal(const Policy& a, const Policy& b) {
  FddArena arena(a.schema());
  return arena.build_reduced(a) == arena.build_reduced(b);
}

std::vector<std::string> load_corpus(const std::string& subdir) {
  const std::filesystem::path dir =
      std::filesystem::path(DFW_CORPUS_DIR) / subdir;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> seeds;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    seeds.push_back(std::move(buf).str());
  }
  EXPECT_FALSE(seeds.empty()) << "empty corpus directory: " << dir;
  return seeds;
}

// ---------------------------------------------------------------------------
// Each transform, pinned on a hand-built policy.

TEST(Simplify, DeadRuleIsEliminatedAndProven) {
  const Schema s = tiny2();
  // Rule 1 is jointly shadowed by rule 0 (x 0-7 superset) — dead.
  Policy p(s, {make_rule(s, {IntervalSet(Interval(0, 7)),
                             IntervalSet(Interval(0, 3))},
                         kAccept),
               make_rule(s, {IntervalSet(Interval(2, 5)),
                             IntervalSet(Interval(1, 2))},
                         kDiscard),
               Rule::catch_all(s, kDiscard)});
  const SimplifyOutcome out = simplify_policy(p);
  EXPECT_EQ(out.report.rules_before, 3u);
  EXPECT_LT(out.report.rules_after, 3u);
  EXPECT_GE(out.report.stats.dead_eliminated, 1u);
  EXPECT_EQ(out.report.proof, ProofStatus::kProven);
  EXPECT_EQ(out.report.proof_discrepancies, 0u);
  EXPECT_TRUE(out.report.complete);
  expect_same_mapping(p, out.policy);
}

TEST(Simplify, AdjacentSingleFieldPairMerges) {
  const Schema s = tiny2();
  // Rules 0 and 1: same decision, identical y, x differs — one rule
  // written as two. The merged rule covers x 0-5.
  Policy p(s, {make_rule(s, {IntervalSet(Interval(0, 2)),
                             IntervalSet(Interval(0, 1))},
                         kAccept),
               make_rule(s, {IntervalSet(Interval(3, 5)),
                             IntervalSet(Interval(0, 1))},
                         kAccept),
               Rule::catch_all(s, kDiscard)});
  const SimplifyOutcome out = simplify_policy(p);
  EXPECT_EQ(out.report.rules_after, 2u);
  EXPECT_GE(out.report.stats.adjacent_merged, 1u);
  EXPECT_EQ(out.report.proof, ProofStatus::kProven);
  EXPECT_EQ(out.policy.rule(0).conjunct(0),
            IntervalSet(Interval(0, 5)));
  expect_same_mapping(p, out.policy);
}

TEST(Simplify, RunSubsumptionDropsTheNarrowSibling) {
  const Schema s = tiny2();
  // A same-decision run [narrow, broad]: narrow is NOT dead (it
  // first-matches), differs from broad in both fields (adjacency cannot
  // merge it), but within the run order is immaterial and broad contains
  // it.
  Policy p(s, {make_rule(s, {IntervalSet(Interval(2, 3)),
                             IntervalSet(Interval(1, 2))},
                         kAccept),
               make_rule(s, {IntervalSet(Interval(0, 7)),
                             IntervalSet(Interval(0, 3))},
                         kAccept),
               Rule::catch_all(s, kDiscard)});
  const SimplifyOutcome out = simplify_policy(p);
  EXPECT_EQ(out.report.rules_after, 2u);
  EXPECT_GE(out.report.stats.run_subsumed, 1u);
  EXPECT_EQ(out.report.proof, ProofStatus::kProven);
  expect_same_mapping(p, out.policy);
}

TEST(Simplify, RunMergesNonAdjacentSingleFieldPair) {
  const Schema s = tiny2();
  // Run [A, B, C]: A and C differ only in x, B differs from both in two
  // fields — adjacency never sees the A/C pair, run coalescing does.
  Policy p(s, {make_rule(s, {IntervalSet(Interval(0, 1)),
                             IntervalSet(Interval(0, 0))},
                         kAccept),
               make_rule(s, {IntervalSet(Interval(4, 5)),
                             IntervalSet(Interval(2, 3))},
                         kAccept),
               make_rule(s, {IntervalSet(Interval(6, 7)),
                             IntervalSet(Interval(0, 0))},
                         kAccept),
               Rule::catch_all(s, kDiscard)});
  const SimplifyOutcome out = simplify_policy(p);
  EXPECT_EQ(out.report.rules_after, 3u);
  EXPECT_GE(out.report.stats.run_merged, 1u);
  EXPECT_EQ(out.report.proof, ProofStatus::kProven);
  expect_same_mapping(p, out.policy);
}

TEST(Simplify, AlreadyMinimalPolicyIsUntouched) {
  const Schema s = tiny2();
  Policy p(s, {make_rule(s, {IntervalSet(Interval(0, 3)),
                             IntervalSet(Interval(0, 3))},
                         kAccept),
               Rule::catch_all(s, kDiscard)});
  const SimplifyOutcome out = simplify_policy(p);
  EXPECT_EQ(out.report.passes, 0u);
  EXPECT_EQ(out.report.rules_after, out.report.rules_before);
  // Nothing changed, so there is nothing to prove.
  EXPECT_EQ(out.report.proof, ProofStatus::kSkipped);
  EXPECT_TRUE(out.report.complete);
}

TEST(Simplify, WorksOnNonComprehensivePolicies) {
  const Schema s = tiny2();
  // No catch-all: the fall-through set is part of the semantics and every
  // transform must preserve it.
  Policy p(s, {make_rule(s, {IntervalSet(Interval(0, 3)),
                             IntervalSet(Interval(0, 1))},
                         kAccept),
               make_rule(s, {IntervalSet(Interval(0, 3)),
                             IntervalSet(Interval(2, 3))},
                         kAccept),
               make_rule(s, {IntervalSet(Interval(1, 2)),
                             IntervalSet(Interval(1, 2))},
                         kDiscard)});
  const SimplifyOutcome out = simplify_policy(p);
  EXPECT_LT(out.report.rules_after, out.report.rules_before);
  EXPECT_EQ(out.report.proof, ProofStatus::kProven);
  expect_same_mapping(p, out.policy);  // evaluate() covers fall-through
  EXPECT_TRUE(canonically_equal(p, out.policy));
}

TEST(Simplify, TransformTogglesAreHonoured) {
  const Schema s = tiny2();
  Policy p(s, {make_rule(s, {IntervalSet(Interval(0, 7)),
                             IntervalSet(Interval(0, 3))},
                         kAccept),
               make_rule(s, {IntervalSet(Interval(2, 5)),
                             IntervalSet(Interval(1, 2))},
                         kDiscard),  // dead
               Rule::catch_all(s, kDiscard)});
  SimplifyOptions options;
  options.eliminate_dead = false;
  options.merge_adjacent = false;
  options.coalesce_runs = false;
  const SimplifyOutcome out = simplify_policy(p, options);
  EXPECT_EQ(out.report.passes, 0u);
  EXPECT_EQ(out.report.rules_after, 3u);
}

TEST(Simplify, ProofCanBeSkipped) {
  const Schema s = tiny2();
  Policy p(s, {make_rule(s, {IntervalSet(Interval(0, 7)),
                             IntervalSet(Interval(0, 3))},
                         kAccept),
               make_rule(s, {IntervalSet(Interval(2, 5)),
                             IntervalSet(Interval(1, 2))},
                         kDiscard),  // dead
               Rule::catch_all(s, kDiscard)});
  SimplifyOptions options;
  options.prove = false;
  const SimplifyOutcome out = simplify_policy(p, options);
  EXPECT_LT(out.report.rules_after, out.report.rules_before);
  EXPECT_EQ(out.report.proof, ProofStatus::kSkipped);
  // Still sound, just unproven by the pass itself.
  expect_same_mapping(p, out.policy);
}

TEST(Simplify, ToStringCoversEveryProofStatus) {
  EXPECT_STREQ(to_string(ProofStatus::kProven), "proven");
  EXPECT_STREQ(to_string(ProofStatus::kSkipped), "skipped");
  EXPECT_STREQ(to_string(ProofStatus::kAborted), "aborted");
  EXPECT_STREQ(to_string(ProofStatus::kRefuted), "refuted");
}

// ---------------------------------------------------------------------------
// Randomized soundness: on tiny universes every packet is checked against
// brute force; the pass's own proof must agree (kProven or untouched).

TEST(SimplifyRandom, BruteForceSoundOnTinySchemas) {
  std::mt19937_64 rng(77);
  for (const Schema& s : {tiny2(), tiny3()}) {
    for (int trial = 0; trial < 60; ++trial) {
      const Policy p = random_policy(s, 2 + trial % 12, rng);
      const SimplifyOutcome out = simplify_policy(p);
      ASSERT_TRUE(out.report.complete);
      ASSERT_TRUE(out.report.proof == ProofStatus::kProven ||
                  out.report.passes == 0)
          << "proof=" << to_string(out.report.proof);
      EXPECT_EQ(out.report.proof_discrepancies, 0u);
      EXPECT_LE(out.policy.size(), p.size());
      expect_same_mapping(p, out.policy);
    }
  }
}

TEST(SimplifyRandom, CorpusSeedsSimplifySound) {
  const Schema schema = five_tuple_schema();
  std::vector<Policy> policies;
  for (const std::string& seed : load_corpus("native")) {
    policies.push_back(parse_policy(schema, default_decisions(), seed));
  }
  for (const std::string& seed : load_corpus("iptables")) {
    policies.push_back(parse_iptables_save(seed, "INPUT"));
  }
  for (const std::string& seed : load_corpus("cisco")) {
    policies.push_back(parse_cisco_acl(seed, "101"));
  }
  ASSERT_FALSE(policies.empty());
  for (const Policy& p : policies) {
    const SimplifyOutcome out = simplify_policy(p);
    EXPECT_TRUE(out.report.complete);
    EXPECT_TRUE(out.report.proof == ProofStatus::kProven ||
                out.report.passes == 0);
    EXPECT_EQ(out.report.proof_discrepancies, 0u);
    EXPECT_TRUE(canonically_equal(p, out.policy));
  }
}

TEST(SimplifyRandom, SyntheticFleetSimplifiesSoundWithMeasurableReduction) {
  FleetSynthConfig config;
  config.sites = 8;
  config.base.num_rules = 40;
  config.seed = 20260808;
  const std::vector<Policy> fleet = make_fleet(config);
  ASSERT_EQ(fleet.size(), 8u);
  std::size_t before = 0;
  std::size_t after = 0;
  for (const Policy& p : fleet) {
    const SimplifyOutcome out = simplify_policy(p);
    ASSERT_TRUE(out.report.complete);
    ASSERT_EQ(out.report.proof, ProofStatus::kProven)
        << to_string(out.report.proof) << ": " << out.report.message;
    EXPECT_TRUE(canonically_equal(p, out.policy));
    EXPECT_TRUE(equivalent(p, out.policy));  // fleets are comprehensive
    before += out.report.rules_before;
    after += out.report.rules_after;
  }
  // The generator salts every site with exact duplicates and split pairs;
  // the pass must claw a measurable share back.
  EXPECT_LT(after, before);
  EXPECT_LE(after * 10, before * 9);  // >= 10% reduction across the fleet
}

// ---------------------------------------------------------------------------
// make_fleet contract

TEST(FleetSynth, SitePoliciesAreIndependentOfFleetSize) {
  FleetSynthConfig small;
  small.sites = 3;
  small.base.num_rules = 30;
  FleetSynthConfig big = small;
  big.sites = 6;
  const std::vector<Policy> a = make_fleet(small);
  const std::vector<Policy> b = make_fleet(big);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "site " << i;
    for (std::size_t r = 0; r < a[i].size(); ++r) {
      EXPECT_EQ(a[i].rule(r).conjuncts(), b[i].rule(r).conjuncts());
      EXPECT_EQ(a[i].rule(r).decision(), b[i].rule(r).decision());
    }
  }
}

TEST(FleetSynth, SitesShareObjectGroupsButDiffer) {
  FleetSynthConfig config;
  config.sites = 4;
  config.base.num_rules = 30;
  const std::vector<Policy> fleet = make_fleet(config);
  ASSERT_EQ(fleet.size(), 4u);
  for (const Policy& p : fleet) {
    EXPECT_TRUE(p.last_rule_is_catch_all());
    EXPECT_GT(p.size(), 1u);
  }
  // Per-site perturbation + carve-outs: sites are not clones.
  bool any_differ = false;
  for (std::size_t i = 1; i < fleet.size() && !any_differ; ++i) {
    any_differ = fleet[i].size() != fleet[0].size() ||
                 !equivalent(fleet[i], fleet[0]);
  }
  EXPECT_TRUE(any_differ);
}

TEST(FleetSynth, RejectsBadGeometry) {
  FleetSynthConfig config;
  config.sites = 0;
  EXPECT_THROW((void)make_fleet(config), std::invalid_argument);
  config.sites = 1;
  config.duplicate_percent = 101;
  EXPECT_THROW((void)make_fleet(config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Governance: the fail-safe contract.

TEST(SimplifyGovern, BudgetBreachReturnsTheOriginalMarked) {
  // A policy big enough that the coverage FDD blows a tiny node budget.
  FleetSynthConfig config;
  config.sites = 1;
  config.base.num_rules = 120;
  const Policy p = make_fleet(config)[0];

  RunContext::Config rc;
  rc.budgets.max_nodes = 10;
  RunContext context(std::move(rc));
  SimplifyOptions options;
  options.run.context = &context;
  const SimplifyOutcome out = simplify_policy(p, options);
  EXPECT_FALSE(out.report.complete);
  EXPECT_NE(out.report.status, ErrorCode::kOk);
  EXPECT_FALSE(out.report.message.empty());
  EXPECT_EQ(out.report.proof, ProofStatus::kAborted);
  // Fail safe: the original comes back byte-for-byte.
  EXPECT_EQ(out.report.rules_after, out.report.rules_before);
  ASSERT_EQ(out.policy.size(), p.size());
  for (std::size_t r = 0; r < p.size(); ++r) {
    EXPECT_EQ(out.policy.rule(r).conjuncts(), p.rule(r).conjuncts());
  }
}

TEST(SimplifyGovern, MetricsCountRemovalsAndProofs) {
  const Schema s = tiny2();
  Policy p(s, {make_rule(s, {IntervalSet(Interval(0, 7)),
                             IntervalSet(Interval(0, 3))},
                         kAccept),
               make_rule(s, {IntervalSet(Interval(2, 5)),
                             IntervalSet(Interval(1, 2))},
                         kDiscard),  // dead
               Rule::catch_all(s, kDiscard)});
  MetricsRegistry metrics;
  SimplifyOptions options;
  options.run.obs.metrics = &metrics;
  const SimplifyOutcome out = simplify_policy(p, options);
  ASSERT_EQ(out.report.proof, ProofStatus::kProven);
  const MetricsSnapshot snap = metrics.snapshot();
  const auto removed = snap.counters.find("simplify.rules_removed");
  ASSERT_NE(removed, snap.counters.end());
  EXPECT_GE(removed->second, 1u);
  const auto proven = snap.counters.find("simplify.proof.proven");
  ASSERT_NE(proven, snap.counters.end());
  EXPECT_GE(proven->second, 1u);
}

}  // namespace
}  // namespace dfw
