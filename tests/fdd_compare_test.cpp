// Comparison algorithm tests (Section 5): the discrepancy set must equal —
// exactly — the set of packets on which the two firewalls disagree, as
// verified by brute force on small universes.

#include <gtest/gtest.h>

#include <map>

#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/shape.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::all_packets;
using test::tiny2;
using test::tiny3;

// Returns the packets whose membership in some discrepancy is claimed.
std::vector<bool> covered_mask(const Schema& schema,
                               const std::vector<Discrepancy>& diffs) {
  const std::vector<Packet> packets = all_packets(schema);
  std::vector<bool> mask(packets.size(), false);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    for (const Discrepancy& d : diffs) {
      bool inside = true;
      for (std::size_t f = 0; f < packets[i].size(); ++f) {
        inside = inside && d.conjuncts[f].contains(packets[i][f]);
      }
      if (inside) {
        mask[i] = true;
        break;
      }
    }
  }
  return mask;
}

TEST(FddCompare, EquivalentPoliciesHaveNoDiscrepancies) {
  std::mt19937_64 rng(1);
  const Policy p = test::random_policy(tiny3(), 6, rng);
  EXPECT_TRUE(discrepancies(p, p).empty());
  EXPECT_TRUE(equivalent(p, p));
}

TEST(FddCompare, DiscrepanciesExactlyCoverDisagreeingPackets) {
  std::mt19937_64 rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    const Policy pa = test::random_policy(tiny3(), 5, rng);
    const Policy pb = test::random_policy(tiny3(), 5, rng);
    const std::vector<Discrepancy> diffs = discrepancies(pa, pb);
    const std::vector<Packet> packets = all_packets(tiny3());
    const std::vector<bool> covered = covered_mask(tiny3(), diffs);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const bool disagree =
          pa.evaluate(packets[i]) != pb.evaluate(packets[i]);
      EXPECT_EQ(covered[i], disagree)
          << "trial " << trial << " packet " << i;
    }
  }
}

TEST(FddCompare, ReportedDecisionsMatchThePolicies) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Policy pa = test::random_policy(tiny2(), 4, rng);
    const Policy pb = test::random_policy(tiny2(), 4, rng);
    for (const Discrepancy& d : discrepancies(pa, pb)) {
      // Every packet in the class maps to the reported pair.
      for (const Packet& p : all_packets(tiny2())) {
        bool inside = true;
        for (std::size_t f = 0; f < p.size(); ++f) {
          inside = inside && d.conjuncts[f].contains(p[f]);
        }
        if (inside) {
          EXPECT_EQ(pa.evaluate(p), d.decisions[0]);
          EXPECT_EQ(pb.evaluate(p), d.decisions[1]);
        }
      }
    }
  }
}

TEST(FddCompare, DiscrepancyClassesArePairwiseDisjoint) {
  std::mt19937_64 rng(4);
  const Policy pa = test::random_policy(tiny3(), 6, rng);
  const Policy pb = test::random_policy(tiny3(), 6, rng);
  const std::vector<Discrepancy> diffs = discrepancies(pa, pb);
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    for (std::size_t j = i + 1; j < diffs.size(); ++j) {
      bool overlap_all_fields = true;
      for (std::size_t f = 0; f < diffs[i].conjuncts.size(); ++f) {
        overlap_all_fields =
            overlap_all_fields &&
            diffs[i].conjuncts[f].overlaps(diffs[j].conjuncts[f]);
      }
      EXPECT_FALSE(overlap_all_fields)
          << "classes " << i << " and " << j << " overlap";
    }
  }
}

TEST(FddCompare, RequiresSemiIsomorphicInputs) {
  std::mt19937_64 rng(5);
  const Fdd fa = build_fdd(test::random_policy(tiny2(), 4, rng));
  const Fdd fb = build_fdd(test::random_policy(tiny2(), 4, rng));
  // Unshaped diagrams are (almost surely) not semi-isomorphic.
  if (!semi_isomorphic(fa, fb)) {
    EXPECT_THROW(compare_fdds(fa, fb), std::invalid_argument);
  }
}

TEST(FddCompare, NWayComparisonMatchesPairwise) {
  std::mt19937_64 rng(6);
  std::vector<Policy> teams;
  for (int i = 0; i < 3; ++i) {
    teams.push_back(test::random_policy(tiny3(), 4, rng));
  }
  const std::vector<Discrepancy> nway = discrepancies_many(teams);
  // N-way coverage must equal the union of pairwise disagreement sets.
  const std::vector<Packet> packets = all_packets(tiny3());
  const std::vector<bool> covered = covered_mask(tiny3(), nway);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const Decision d0 = teams[0].evaluate(packets[i]);
    const Decision d1 = teams[1].evaluate(packets[i]);
    const Decision d2 = teams[2].evaluate(packets[i]);
    const bool disagree = !(d0 == d1 && d1 == d2);
    EXPECT_EQ(covered[i], disagree) << "packet " << i;
  }
  for (const Discrepancy& d : nway) {
    EXPECT_EQ(d.decisions.size(), 3u);
  }
}

TEST(FddCompare, NonComprehensiveInputRejected) {
  const Schema schema = tiny2();
  const Policy partial(
      schema,
      {Rule(schema, {IntervalSet(Interval(0, 3)), IntervalSet(Interval(0, 7))},
            kAccept)});
  const Policy full(schema, {Rule::catch_all(schema, kDiscard)});
  EXPECT_THROW(discrepancies(partial, full), std::logic_error);
}

TEST(FddCompare, PacketCountIsExact) {
  Discrepancy d;
  d.conjuncts = {IntervalSet(Interval(0, 3)), IntervalSet(Interval(2, 5))};
  d.decisions = {kAccept, kDiscard};
  EXPECT_EQ(discrepancy_packet_count(d), 16u);
}

TEST(FddCompare, TotalDisagreementReportsWholeSpace) {
  const Schema schema = tiny2();
  const Policy all_accept(schema, {Rule::catch_all(schema, kAccept)});
  const Policy all_discard(schema, {Rule::catch_all(schema, kDiscard)});
  const std::vector<Discrepancy> diffs =
      discrepancies(all_accept, all_discard);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(discrepancy_packet_count(diffs[0]),
            schema.packet_space_size());
}

}  // namespace
}  // namespace dfw
