// Compiled-classifier tests: exhaustive differential agreement with the
// policy on small universes, random-probe agreement on five-tuple scale,
// structural compactness, and error paths.

#include <gtest/gtest.h>

#include "engine/classifier.hpp"
#include "fdd/construct.hpp"
#include "synth/synth.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

TEST(Classifier, AgreesWithPolicyExhaustively) {
  std::mt19937_64 rng(111);
  for (int trial = 0; trial < 25; ++trial) {
    const Policy p = test::random_policy(tiny3(), 6, rng);
    const Classifier c = Classifier::compile(p);
    for (const Packet& pkt : test::all_packets(tiny3())) {
      EXPECT_EQ(c.classify(pkt), p.evaluate(pkt));
    }
  }
}

TEST(Classifier, ConstantPolicy) {
  const Schema s = tiny2();
  const Classifier c =
      Classifier::compile(Policy(s, {Rule::catch_all(s, kDiscard)}));
  EXPECT_EQ(c.classify({0, 0}), kDiscard);
  EXPECT_EQ(c.classify({7, 7}), kDiscard);
  EXPECT_EQ(c.node_count(), 0u);  // the root is a bare decision
}

TEST(Classifier, AgreesOnFiveTupleRandomProbes) {
  SynthConfig config;
  config.num_rules = 120;
  Rng rng(112);
  const Policy p = synth_policy(config, rng);
  const Classifier c = Classifier::compile(p);
  std::uniform_int_distribution<Value> ip(0, UINT32_MAX);
  std::uniform_int_distribution<Value> port(0, 65535);
  std::uniform_int_distribution<Value> proto(0, 255);
  for (int probe = 0; probe < 5000; ++probe) {
    const Packet pkt = {ip(rng), ip(rng), port(rng), port(rng), proto(rng)};
    EXPECT_EQ(c.classify(pkt), p.evaluate(pkt));
  }
  // Probe rule corners too: corners are where off-by-one bugs live.
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    Packet lo;
    Packet hi;
    for (std::size_t f = 0; f < 5; ++f) {
      lo.push_back(p.rule(i).conjunct(f).min());
      hi.push_back(p.rule(i).conjunct(f).max());
    }
    EXPECT_EQ(c.classify(lo), p.evaluate(lo));
    EXPECT_EQ(c.classify(hi), p.evaluate(hi));
  }
}

TEST(Classifier, CompiledFormIsCompact) {
  SynthConfig config;
  config.num_rules = 200;
  Rng rng(113);
  const Policy p = synth_policy(config, rng);
  const Fdd fdd = build_reduced_fdd(p);
  const Classifier c = Classifier::compile(fdd);
  // One compiled node per nonterminal FDD node... except that identical
  // subtrees compiled from distinct tree nodes are materialised per node;
  // the structure never exceeds the tree's node count.
  EXPECT_LE(c.node_count(), fdd.node_count());
  EXPECT_GT(c.slab_count(), 0u);
}

TEST(Classifier, CompileFromFddDirectly) {
  std::mt19937_64 rng(114);
  const Policy p = test::random_policy(tiny2(), 4, rng);
  const Fdd fdd = build_reduced_fdd(p);
  const Classifier c = Classifier::compile(fdd);
  for (const Packet& pkt : test::all_packets(tiny2())) {
    EXPECT_EQ(c.classify(pkt), fdd.evaluate(pkt));
  }
}

TEST(Classifier, RejectsIncompleteFdd) {
  const Schema s = tiny2();
  const Policy partial(
      s, {Rule(s, {IntervalSet(Interval(0, 3)), IntervalSet(Interval(0, 7))},
               kAccept)});
  const Fdd fdd = build_fdd(partial);
  EXPECT_THROW(Classifier::compile(fdd), std::logic_error);
}

TEST(Classifier, RejectsWrongArity) {
  const Schema s = tiny2();
  const Classifier c =
      Classifier::compile(Policy(s, {Rule::catch_all(s, kAccept)}));
  EXPECT_THROW(c.classify({1}), std::invalid_argument);
}

}  // namespace
}  // namespace dfw
