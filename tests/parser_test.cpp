// Policy text-format parser tests: atoms of every kind, defaults, comments,
// and precise error reporting.

#include <gtest/gtest.h>

#include "fw/parser.hpp"
#include "net/ipv4.hpp"

namespace dfw {
namespace {

const Schema kSchema = five_tuple_schema();
const DecisionSet& kDecisions = default_decisions();

TEST(Parser, SingleRuleAllDefaults) {
  const Rule r = parse_rule(kSchema, kDecisions, "accept");
  EXPECT_EQ(r.decision(), kAccept);
  for (std::size_t i = 0; i < kSchema.field_count(); ++i) {
    EXPECT_EQ(r.conjunct(i), IntervalSet(kSchema.domain(i)));
  }
}

TEST(Parser, CidrAndHostAtoms) {
  const Rule r = parse_rule(kSchema, kDecisions,
                            "discard sip=224.168.0.0/16 dip=192.168.0.1");
  EXPECT_EQ(r.conjunct(0),
            IntervalSet(Interval(*parse_ipv4("224.168.0.0"),
                                 *parse_ipv4("224.168.255.255"))));
  EXPECT_EQ(r.conjunct(1),
            IntervalSet(Interval::point(*parse_ipv4("192.168.0.1"))));
}

TEST(Parser, IntegerRangeAndList) {
  const Rule r =
      parse_rule(kSchema, kDecisions, "accept dport=25,80,1024-2047");
  IntervalSet expected;
  expected.add(Interval::point(25));
  expected.add(Interval::point(80));
  expected.add(Interval(1024, 2047));
  EXPECT_EQ(r.conjunct(3), expected);
}

TEST(Parser, ProtocolMnemonics) {
  EXPECT_EQ(parse_rule(kSchema, kDecisions, "accept proto=tcp").conjunct(4),
            IntervalSet(Interval::point(6)));
  EXPECT_EQ(parse_rule(kSchema, kDecisions, "accept proto=udp").conjunct(4),
            IntervalSet(Interval::point(17)));
  EXPECT_EQ(parse_rule(kSchema, kDecisions, "accept proto=icmp").conjunct(4),
            IntervalSet(Interval::point(1)));
  EXPECT_EQ(parse_rule(kSchema, kDecisions, "accept proto=47").conjunct(4),
            IntervalSet(Interval::point(47)));
}

TEST(Parser, BinaryProtocolDomainUsesPaperEncoding) {
  // On the example schema's {0 = TCP, 1 = UDP} domain the mnemonics map to
  // the paper's encoding rather than the IANA numbers.
  const Schema s = example_schema();
  EXPECT_EQ(parse_rule(s, kDecisions, "accept P=tcp").conjunct(4),
            IntervalSet(Interval::point(0)));
  EXPECT_EQ(parse_rule(s, kDecisions, "accept P=udp").conjunct(4),
            IntervalSet(Interval::point(1)));
}

TEST(Parser, Ipv4Range) {
  const Rule r = parse_rule(kSchema, kDecisions,
                            "accept sip=10.0.0.0-10.0.0.255");
  EXPECT_EQ(r.conjunct(0), IntervalSet(Interval(*parse_ipv4("10.0.0.0"),
                                                *parse_ipv4("10.0.0.255"))));
}

TEST(Parser, StarAndAllSpecs) {
  const Rule r = parse_rule(kSchema, kDecisions, "accept sip=* dport=all");
  EXPECT_EQ(r.conjunct(0), IntervalSet(kSchema.domain(0)));
  EXPECT_EQ(r.conjunct(3), IntervalSet(kSchema.domain(3)));
}

TEST(Parser, WholePolicyWithCommentsAndBlanks) {
  const Policy p = parse_policy(kSchema, kDecisions,
                                "# head comment\n"
                                "\n"
                                "discard sip=224.168.0.0/16  # inline\n"
                                "accept\n");
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.last_rule_is_catch_all());
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_policy(kSchema, kDecisions, "accept\nbogus dport=25\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("unknown decision"),
              std::string::npos);
  }
}

TEST(Parser, RejectsUnknownField) {
  EXPECT_THROW(parse_rule(kSchema, kDecisions, "accept nosuch=5"),
               ParseError);
}

TEST(Parser, RejectsRepeatedField) {
  EXPECT_THROW(parse_rule(kSchema, kDecisions, "accept dport=1 dport=2"),
               ParseError);
}

TEST(Parser, RejectsDomainEscape) {
  EXPECT_THROW(parse_rule(kSchema, kDecisions, "accept dport=70000"),
               ParseError);
  EXPECT_THROW(parse_rule(kSchema, kDecisions, "accept proto=300"),
               ParseError);
}

TEST(Parser, RejectsBadSyntax) {
  EXPECT_THROW(parse_rule(kSchema, kDecisions, "accept dport"), ParseError);
  EXPECT_THROW(parse_rule(kSchema, kDecisions, "accept dport=5-2"),
               ParseError);
  EXPECT_THROW(parse_rule(kSchema, kDecisions, "accept dport=,"),
               ParseError);
  EXPECT_THROW(parse_rule(kSchema, kDecisions, "accept sip=1.2.3.4/40"),
               ParseError);
  EXPECT_THROW(parse_policy(kSchema, kDecisions, "# only comments\n"),
               ParseError);
}

TEST(Parser, CustomDecisions) {
  DecisionSet ds;
  const Decision accept_log = ds.add("accept_log");
  const Rule r = parse_rule(kSchema, ds, "accept_log dport=22");
  EXPECT_EQ(r.decision(), accept_log);
}

}  // namespace
}  // namespace dfw
