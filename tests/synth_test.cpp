// Synthetic generator tests: determinism, comprehensiveness, the rule-
// geometry distributions of Section 8.2.2, and the perturbation model of
// Section 8.2.1.

#include <gtest/gtest.h>

#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

TEST(Synth, DeterministicInSeed) {
  SynthConfig config;
  config.num_rules = 50;
  Rng rng1(12345);
  Rng rng2(12345);
  const Policy a = synth_policy(config, rng1);
  const Policy b = synth_policy(config, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.rule(i), b.rule(i));
  }
}

TEST(Synth, ProducesRequestedSizeWithCatchAll) {
  SynthConfig config;
  config.num_rules = 87;
  Rng rng(1);
  const Policy p = synth_policy(config, rng);
  EXPECT_EQ(p.size(), 87u);
  EXPECT_TRUE(p.last_rule_is_catch_all());
  EXPECT_EQ(p.rules().back().decision(), kDiscard);
}

TEST(Synth, GeneratedPoliciesAreComprehensive) {
  SynthConfig config;
  config.num_rules = 30;
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const Policy p = synth_policy(config, rng);
    Fdd fdd = build_fdd(p);
    EXPECT_NO_THROW(fdd.validate());
  }
}

TEST(Synth, RespectsSingleRuleMinimum) {
  SynthConfig config;
  config.num_rules = 1;
  Rng rng(3);
  const Policy p = synth_policy(config, rng);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.last_rule_is_catch_all());
  config.num_rules = 0;
  EXPECT_THROW(synth_policy(config, rng), std::invalid_argument);
}

TEST(Synth, IpConjunctsAreCidrShaped) {
  SynthConfig config;
  config.num_rules = 300;
  Rng rng(4);
  const Policy p = synth_policy(config, rng);
  std::size_t wildcard = 0;
  std::size_t shaped = 0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const IntervalSet& sip = p.rule(i).conjunct(0);
    ASSERT_EQ(sip.run_count(), 1u);
    const Interval iv = sip.intervals().front();
    if (iv == Interval(0, UINT32_MAX)) {
      ++wildcard;
      continue;
    }
    ++shaped;
    // CIDR-shaped: size is a power of two and lo is aligned to it.
    const Value size = iv.size();
    EXPECT_EQ(size & (size - 1), 0u) << "non power-of-two block";
    EXPECT_EQ(iv.lo() % size, 0u) << "unaligned block";
  }
  EXPECT_GT(wildcard, 0u);
  EXPECT_GT(shaped, 0u);
}

TEST(Synth, DecisionMixFollowsWeights) {
  SynthConfig config;
  config.num_rules = 400;
  config.accept_weight = 100;  // all accepts
  Rng rng(5);
  const Policy p = synth_policy(config, rng);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_EQ(p.rule(i).decision(), kAccept);
  }
}

TEST(Synth, PerturbationKeepsComprehensiveness) {
  SynthConfig config;
  config.num_rules = 60;
  Rng rng(6);
  const Policy original = synth_policy(config, rng);
  for (double x : {5.0, 25.0, 50.0}) {
    const Policy perturbed = perturb_policy(original, x, rng);
    Fdd fdd = build_fdd(perturbed);
    EXPECT_NO_THROW(fdd.validate());
    EXPECT_LE(perturbed.size(), original.size());
    EXPECT_GE(perturbed.size(),
              original.size() -
                  static_cast<std::size_t>(original.size() * x / 100.0) - 1);
  }
}

TEST(Synth, ZeroPerturbationIsIdentity) {
  SynthConfig config;
  config.num_rules = 20;
  Rng rng(7);
  const Policy original = synth_policy(config, rng);
  const Policy same = perturb_policy(original, 0.0, rng);
  EXPECT_TRUE(equivalent(original, same));
}

TEST(Synth, PerturbationValidatesRange) {
  SynthConfig config;
  config.num_rules = 5;
  Rng rng(8);
  const Policy p = synth_policy(config, rng);
  EXPECT_THROW(perturb_policy(p, -1.0, rng), std::invalid_argument);
  EXPECT_THROW(perturb_policy(p, 101.0, rng), std::invalid_argument);
}

TEST(Synth, PerturbationUsuallyChangesSemantics) {
  SynthConfig config;
  config.num_rules = 60;
  Rng rng(9);
  int changed = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const Policy original = synth_policy(config, rng);
    const Policy perturbed = perturb_policy(original, 40.0, rng);
    if (!equivalent(original, perturbed)) {
      ++changed;
    }
  }
  EXPECT_GE(changed, 3);
}

}  // namespace
}  // namespace dfw
