// End-to-end reproduction of the paper's running example: the firewalls of
// Teams A and B (Tables 1-2), their FDDs (Figs. 2-5), the three functional
// discrepancies (Table 3), the resolution (Table 4), and the final
// firewalls of both resolution methods (Tables 5-7).

#include <gtest/gtest.h>

#include "diverse/discrepancy.hpp"
#include "diverse/workflow.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/shape.hpp"
#include "fw/parser.hpp"
#include "net/ipv4.hpp"

namespace dfw {
namespace {

// Shorthand from Section 2: alpha/beta bound the malicious /16; gamma is
// the mail server.
const std::uint32_t kAlpha = *parse_ipv4("224.168.0.0");
const std::uint32_t kBeta = *parse_ipv4("224.168.255.255");
const std::uint32_t kGamma = *parse_ipv4("192.168.0.1");

// Table 1: Team A. r1 accepts mail to the server, r2 discards the
// malicious domain, r3 accepts the rest.
Policy team_a() {
  return parse_policy(example_schema(), default_decisions(),
                      "accept  I=0 D=192.168.0.1 N=25 P=tcp\n"
                      "discard I=0 S=224.168.0.0/16\n"
                      "accept\n");
}

// Table 2: Team B. r1 discards the malicious domain first, r2 accepts mail
// to the server, r3 discards other traffic to the server, r4 accepts rest.
Policy team_b() {
  return parse_policy(example_schema(), default_decisions(),
                      "discard I=0 S=224.168.0.0/16\n"
                      "accept  I=0 D=192.168.0.1 N=25 P=tcp\n"
                      "discard I=0 D=192.168.0.1\n"
                      "accept\n");
}

TEST(PaperExample, PoliciesParseAsInTables1And2) {
  const Policy a = team_a();
  const Policy b = team_b();
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(a.rule(0).conjunct(2), IntervalSet(Interval::point(kGamma)));
  EXPECT_EQ(a.rule(1).conjunct(1), IntervalSet(Interval(kAlpha, kBeta)));
  EXPECT_TRUE(a.last_rule_is_catch_all());
  EXPECT_TRUE(b.last_rule_is_catch_all());
}

TEST(PaperExample, ConstructedFddsAreValidAndEquivalentToPolicies) {
  for (const Policy& p : {team_a(), team_b()}) {
    const Fdd fdd = build_fdd(p);
    fdd.validate();
    // Spot-check representative packets rather than the 2^70 space.
    const Packet mail_from_bad = {0, kAlpha + 5, kGamma, 25, 0};
    const Packet mail_from_good = {0, 1, kGamma, 25, 0};
    const Packet udp_to_server = {0, 1, kGamma, 25, 1};
    const Packet other_to_server = {0, 1, kGamma, 80, 0};
    const Packet unrelated = {1, 1, 2, 80, 0};
    for (const Packet& pkt :
         {mail_from_bad, mail_from_good, udp_to_server, other_to_server,
          unrelated}) {
      EXPECT_EQ(fdd.evaluate(pkt), p.evaluate(pkt));
    }
  }
}

TEST(PaperExample, ShapingProducesSemiIsomorphicFdds) {
  Fdd fa = build_fdd(team_a());
  Fdd fb = build_fdd(team_b());
  EXPECT_FALSE(semi_isomorphic(fa, fb));
  shape_pair(fa, fb);
  EXPECT_TRUE(semi_isomorphic(fa, fb));
  fa.validate();
  fb.validate();
}

// Table 3's three discrepancies, expressed as packet probes:
//   1. mail from the malicious domain to the server: A accepts, B discards
//   2. non-TCP port-25 traffic to the server from good hosts: A accepts,
//      B discards
//   3. non-mail traffic to the server from good hosts: A accepts,
//      B discards
TEST(PaperExample, Table3DiscrepancyDecisions) {
  const Policy a = team_a();
  const Policy b = team_b();
  const Packet d1 = {0, kAlpha + 1, kGamma, 25, 0};
  const Packet d2 = {0, 1, kGamma, 25, 1};
  const Packet d3 = {0, 1, kGamma, 80, 0};
  for (const Packet& pkt : {d1, d2, d3}) {
    EXPECT_EQ(a.evaluate(pkt), kAccept);
    EXPECT_EQ(b.evaluate(pkt), kDiscard);
  }
  // Agreements stay agreements.
  const Packet agreed1 = {0, kAlpha + 1, 7, 80, 0};  // malicious, not mail
  const Packet agreed2 = {1, 1, 2, 80, 0};           // inside interface
  for (const Packet& pkt : {agreed1, agreed2}) {
    EXPECT_EQ(a.evaluate(pkt), b.evaluate(pkt));
  }
}

TEST(PaperExample, ComparisonFindsExactlyTheTable3Classes) {
  const std::vector<Discrepancy> diffs = discrepancies(team_a(), team_b());
  ASSERT_FALSE(diffs.empty());
  // Every reported class must be a genuine disagreement.
  for (const Discrepancy& d : diffs) {
    ASSERT_EQ(d.decisions.size(), 2u);
    EXPECT_NE(d.decisions[0], d.decisions[1]);
    // Probe one packet in the class.
    Packet probe;
    for (const IntervalSet& s : d.conjuncts) {
      probe.push_back(s.min());
    }
    EXPECT_EQ(team_a().evaluate(probe), d.decisions[0]);
    EXPECT_EQ(team_b().evaluate(probe), d.decisions[1]);
  }
  // The three Table 3 classes are all present (by probing their packets
  // against the reported conjuncts).
  const std::vector<Packet> table3 = {
      {0, kAlpha + 1, kGamma, 25, 0},
      {0, 1, kGamma, 25, 1},
      {0, 1, kGamma, 80, 0},
  };
  for (const Packet& pkt : table3) {
    bool found = false;
    for (const Discrepancy& d : diffs) {
      bool inside = true;
      for (std::size_t f = 0; f < pkt.size(); ++f) {
        inside = inside && d.conjuncts[f].contains(pkt[f]);
      }
      found = found || inside;
    }
    EXPECT_TRUE(found) << "Table 3 packet not covered by any discrepancy";
  }
}

// Table 4 resolves the discrepancies: mail from the malicious domain is
// discarded (B wins); non-TCP port-25 to the server is discarded (B wins);
// other traffic to the server is accepted (A wins). Both resolution
// methods must produce the same mapping — the corrected firewall of
// Tables 5, 6, and 7.
TEST(PaperExample, ResolutionMethodsAgreeWithTable4) {
  DiverseDesign session((DecisionSet()));
  session.submit("Team A", team_a());
  session.submit("Team B", team_b());
  const std::vector<Discrepancy> diffs = session.compare();

  ResolutionPlan plan;
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    // Identify the class by its predicate geometry. All discrepancies here
    // concern traffic to the mail server or from the malicious domain; the
    // shaped FDDs cut N exactly at 25 and P at tcp/udp, so each class is
    // entirely inside one Table 4 row.
    const bool from_malicious = diffs[i].conjuncts[1].contains(kAlpha + 1);
    const bool mail_port = diffs[i].conjuncts[3].contains(25);
    const bool tcp = diffs[i].conjuncts[4].contains(0);
    Decision agreed;
    if (from_malicious) {
      agreed = kDiscard;  // Table 4 row 1: malicious domain stays blocked
    } else if (mail_port && !tcp) {
      agreed = kDiscard;  // Table 4 row 2: non-TCP port 25 to the server
    } else {
      agreed = kAccept;  // Table 4 row 3: other traffic to the server
    }
    plan.push_back({i, agreed});
  }

  const Policy via_fdd =
      session.resolve(plan, ResolutionMethod::kCorrectedFdd, 0);
  const Policy via_corrections_a =
      session.resolve(plan, ResolutionMethod::kPrependAndTrim, 0);
  const Policy via_corrections_b =
      session.resolve(plan, ResolutionMethod::kPrependAndTrim, 1);

  EXPECT_TRUE(equivalent(via_fdd, via_corrections_a));
  EXPECT_TRUE(equivalent(via_fdd, via_corrections_b));

  // The agreed decisions hold on the Table 4 packets.
  const Packet mail_from_bad = {0, kAlpha + 1, kGamma, 25, 0};
  const Packet udp_25_to_server = {0, 1, kGamma, 25, 1};
  const Packet web_to_server = {0, 1, kGamma, 80, 0};
  for (const Policy& final_policy :
       {via_fdd, via_corrections_a, via_corrections_b}) {
    EXPECT_EQ(final_policy.evaluate(mail_from_bad), kDiscard);
    EXPECT_EQ(final_policy.evaluate(udp_25_to_server), kDiscard);
    EXPECT_EQ(final_policy.evaluate(web_to_server), kAccept);
    // Untouched classes keep their agreed-on behaviour.
    EXPECT_EQ(final_policy.evaluate({0, kAlpha + 1, 7, 80, 0}), kDiscard);
    EXPECT_EQ(final_policy.evaluate({1, 1, 2, 80, 0}), kAccept);
  }
}

TEST(PaperExample, ReportMentionsBothTeams) {
  DiverseDesign session((DecisionSet()));
  session.submit("Team A", team_a());
  session.submit("Team B", team_b());
  const std::string report = session.report();
  EXPECT_NE(report.find("Team A=accept"), std::string::npos);
  EXPECT_NE(report.find("Team B=discard"), std::string::npos);
  EXPECT_NE(report.find("functional discrepancies"), std::string::npos);
}

}  // namespace
}  // namespace dfw
