// Property-checking tests: forall/exists semantics against brute force,
// exact counterexamples, batch checking, and the requirement-spec use
// case (encoding the paper's Section 2 specification as properties).

#include <gtest/gtest.h>

#include "analysis/property.hpp"
#include "fw/parser.hpp"
#include "net/ipv4.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::all_packets;
using test::tiny3;

TEST(Property, ForAllAgainstBruteForce) {
  std::mt19937_64 rng(141);
  for (int trial = 0; trial < 20; ++trial) {
    const Policy p = test::random_policy(tiny3(), 5, rng);
    Property prop;
    prop.name = "x in [0,2] always accepted";
    prop.scope = Query::any(p.schema());
    prop.scope.constraints[0] = IntervalSet(Interval(0, 2));
    prop.scope.decision = kAccept;
    const PropertyResult result = check_property(p, prop);
    bool expected = true;
    for (const Packet& pkt : all_packets(tiny3())) {
      if (pkt[0] <= 2 && p.evaluate(pkt) != kAccept) {
        expected = false;
      }
    }
    EXPECT_EQ(result.holds, expected) << "trial " << trial;
    // Counterexamples cover exactly the violating packets.
    for (const Packet& pkt : all_packets(tiny3())) {
      bool covered = false;
      for (const QueryResult& cx : result.counterexamples) {
        bool inside = true;
        for (std::size_t f = 0; f < pkt.size(); ++f) {
          inside = inside && cx.conjuncts[f].contains(pkt[f]);
        }
        covered = covered || inside;
      }
      const bool violating = pkt[0] <= 2 && p.evaluate(pkt) != kAccept;
      EXPECT_EQ(covered, violating);
    }
  }
}

TEST(Property, ExistsAgainstBruteForce) {
  std::mt19937_64 rng(142);
  for (int trial = 0; trial < 20; ++trial) {
    const Policy p = test::random_policy(tiny3(), 5, rng);
    Property prop;
    prop.name = "some y=3 packet is discarded";
    prop.scope = Query::any(p.schema());
    prop.scope.constraints[1] = IntervalSet(Interval::point(3));
    prop.scope.decision = kDiscard;
    prop.mode = PropertyMode::kExists;
    bool expected = false;
    for (const Packet& pkt : all_packets(tiny3())) {
      if (pkt[1] == 3 && p.evaluate(pkt) == kDiscard) {
        expected = true;
      }
    }
    EXPECT_EQ(check_property(p, prop).holds, expected);
  }
}

TEST(Property, RequiresDecision) {
  const Schema s = tiny3();
  const Policy p(s, {Rule::catch_all(s, kAccept)});
  Property prop;
  prop.scope = Query::any(s);  // no decision set
  EXPECT_THROW(check_property(p, prop), std::invalid_argument);
}

// The paper's Section 2 requirement specification as properties over the
// example firewall of Team B (Table 2).
TEST(Property, PaperSpecificationAsProperties) {
  const Schema schema = example_schema();
  const Policy team_b =
      parse_policy(schema, default_decisions(),
                   "discard I=0 S=224.168.0.0/16\n"
                   "accept  I=0 D=192.168.0.1 N=25 P=tcp\n"
                   "discard I=0 D=192.168.0.1\n"
                   "accept\n");
  const Value gamma = *parse_ipv4("192.168.0.1");
  const Value alpha = *parse_ipv4("224.168.0.0");
  const Value beta = *parse_ipv4("224.168.255.255");

  Property mail_reachable;
  mail_reachable.name = "mail server can receive SMTP from good hosts";
  mail_reachable.scope = Query::any(schema);
  mail_reachable.scope.constraints[2] = IntervalSet(Interval::point(gamma));
  mail_reachable.scope.constraints[3] = IntervalSet(Interval::point(25));
  mail_reachable.scope.constraints[4] = IntervalSet(Interval::point(0));
  mail_reachable.scope.decision = kAccept;
  mail_reachable.mode = PropertyMode::kExists;

  Property malicious_blocked;
  malicious_blocked.name = "the malicious domain is always blocked";
  malicious_blocked.scope = Query::any(schema);
  malicious_blocked.scope.constraints[0] = IntervalSet(Interval::point(0));
  malicious_blocked.scope.constraints[1] =
      IntervalSet(Interval(alpha, beta));
  malicious_blocked.scope.decision = kDiscard;

  const std::vector<PropertyResult> results =
      check_properties(team_b, {mail_reachable, malicious_blocked});
  EXPECT_TRUE(results[0].holds);
  // Team B accepts malicious mail to the server? No — B discards the
  // domain first, so the blanket block DOES hold for B.
  EXPECT_TRUE(results[1].holds);

  // Team A (Table 1) accepts mail before blocking the domain, so the
  // blanket block fails for A, with the mail-server class as the
  // counterexample.
  const Policy team_a =
      parse_policy(schema, default_decisions(),
                   "accept  I=0 D=192.168.0.1 N=25 P=tcp\n"
                   "discard I=0 S=224.168.0.0/16\n"
                   "accept\n");
  const PropertyResult on_a = check_property(team_a, malicious_blocked);
  EXPECT_FALSE(on_a.holds);
  ASSERT_FALSE(on_a.counterexamples.empty());
  for (const QueryResult& cx : on_a.counterexamples) {
    EXPECT_EQ(cx.decision, kAccept);
    EXPECT_TRUE(cx.conjuncts[2].contains(gamma));
    EXPECT_TRUE(cx.conjuncts[3].contains(25));
  }
}

TEST(Property, ReportFormatsPassAndFail) {
  const Schema s = tiny3();
  const Policy p(s, {Rule::catch_all(s, kAccept)});
  Property good;
  good.name = "everything accepted";
  good.scope = Query::any(s);
  good.scope.decision = kAccept;
  Property bad;
  bad.name = "everything discarded";
  bad.scope = Query::any(s);
  bad.scope.decision = kDiscard;
  const std::vector<Property> props = {good, bad};
  const std::vector<PropertyResult> results = check_properties(p, props);
  const std::string report =
      format_property_report(s, default_decisions(), props, results);
  EXPECT_NE(report.find("PASS everything accepted"), std::string::npos);
  EXPECT_NE(report.find("FAIL everything discarded"), std::string::npos);
  EXPECT_NE(report.find("counterexample:"), std::string::npos);
  EXPECT_THROW(format_property_report(s, default_decisions(), props, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dfw
