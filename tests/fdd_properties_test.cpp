// Property-based tests on the end-to-end pipeline, parameterized over
// seeds: for every random policy pair over a tiny universe, (1) the
// constructed FDD is semantically equal to the policy, (2) shaping changes
// neither side's semantics, (3) the comparison output is a sound and
// complete description of the disagreement set, and (4) Theorem 1's
// (2n-1)^d bound holds for simple-rule policies.

#include <gtest/gtest.h>

#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/shape.hpp"
#include "fdd/stats.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::all_packets;
using test::tiny3;

class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, ConstructionPreservesFirstMatchSemantics) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const Policy p = test::random_policy(tiny3(), 7, rng);
  const Fdd fdd = build_fdd(p);
  fdd.validate();
  EXPECT_TRUE(test::fdd_matches_policy(fdd, p));
}

TEST_P(PipelineProperty, ShapingPreservesSemantics) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Policy pa = test::random_policy(tiny3(), 6, rng);
  const Policy pb = test::random_policy(tiny3(), 6, rng);
  Fdd fa = build_fdd(pa);
  Fdd fb = build_fdd(pb);
  shape_pair(fa, fb);
  EXPECT_TRUE(semi_isomorphic(fa, fb));
  EXPECT_TRUE(test::fdd_matches_policy(fa, pa));
  EXPECT_TRUE(test::fdd_matches_policy(fb, pb));
}

TEST_P(PipelineProperty, ComparisonIsSoundAndComplete) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const Policy pa = test::random_policy(tiny3(), 6, rng);
  const Policy pb = test::random_policy(tiny3(), 6, rng);
  const std::vector<Discrepancy> diffs = discrepancies(pa, pb);
  Value covered = 0;
  for (const Discrepancy& d : diffs) {
    covered += discrepancy_packet_count(d);
    EXPECT_NE(d.decisions[0], d.decisions[1]);
  }
  Value disagreement = 0;
  for (const Packet& pkt : all_packets(tiny3())) {
    if (pa.evaluate(pkt) != pb.evaluate(pkt)) {
      ++disagreement;
    }
  }
  // Classes are disjoint (verified in fdd_compare_test), so the total
  // packet count equals the brute-force disagreement count iff the classes
  // cover exactly the disagreement set.
  EXPECT_EQ(covered, disagreement);
}

TEST_P(PipelineProperty, Theorem1PathBoundHolds) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  // Simple rules only: single-interval conjuncts (the theorem's premise).
  const Schema schema = tiny3();
  std::vector<Rule> rules;
  const std::size_t n = 5;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::vector<IntervalSet> conjuncts;
    for (std::size_t f = 0; f < schema.field_count(); ++f) {
      conjuncts.emplace_back(test::random_interval(schema.domain(f), rng));
    }
    std::uniform_int_distribution<int> coin(0, 1);
    rules.emplace_back(schema, std::move(conjuncts),
                       coin(rng) == 0 ? kAccept : kDiscard);
  }
  rules.push_back(Rule::catch_all(schema, kDiscard));
  const Policy p(schema, std::move(rules));
  const Fdd fdd = build_fdd(p);
  EXPECT_LE(fdd.path_count(),
            theorem1_path_bound(n, schema.field_count()));
}

TEST_P(PipelineProperty, EquivalentRewritesAreDetectedAsEquivalent) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  const Policy p = test::random_policy(tiny3(), 5, rng);
  // Swapping two *non-conflicting* adjacent rules preserves semantics:
  // craft it by duplicating a rule with the same decision.
  std::vector<Rule> rules = p.rules();
  Rule copy = rules[1];
  rules.insert(rules.begin() + 1, copy);
  const Policy padded(p.schema(), std::move(rules));
  EXPECT_TRUE(equivalent(p, padded));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Range(0, 24));

TEST(Theorem1Bound, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(theorem1_path_bound(1, 3), 1u);
  EXPECT_EQ(theorem1_path_bound(2, 2), 9u);
  EXPECT_EQ(theorem1_path_bound(3000, 5), 5999ull * 5999 * 5999 * 5999 * 5999);
  EXPECT_EQ(theorem1_path_bound(SIZE_MAX / 2, 5), SIZE_MAX);
}

}  // namespace
}  // namespace dfw
