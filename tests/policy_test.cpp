// Policy unit tests: first-match evaluation, comprehensiveness detection,
// and the rule-edit operations change-impact analysis builds on.

#include <gtest/gtest.h>

#include "fw/policy.hpp"

namespace dfw {
namespace {

Schema two_fields() {
  return Schema({{"x", Interval(0, 15), FieldKind::kInteger},
                 {"y", Interval(0, 7), FieldKind::kInteger}});
}

Rule rule(const Schema& s, Interval x, Interval y, Decision d) {
  return Rule(s, {IntervalSet(x), IntervalSet(y)}, d);
}

Policy sample() {
  const Schema s = two_fields();
  return Policy(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                    rule(s, Interval(3, 10), Interval(0, 3), kDiscard),
                    Rule::catch_all(s, kAccept)});
}

TEST(Policy, FirstMatchEvaluation) {
  const Policy p = sample();
  EXPECT_EQ(p.evaluate({4, 2}), kAccept);   // rules 1 and 2 match; 1 wins
  EXPECT_EQ(p.evaluate({8, 2}), kDiscard);  // only rule 2
  EXPECT_EQ(p.evaluate({12, 7}), kAccept);  // catch-all
  EXPECT_EQ(p.first_match({4, 2}), 0u);
  EXPECT_EQ(p.first_match({8, 2}), 1u);
  EXPECT_EQ(p.first_match({12, 7}), 2u);
}

TEST(Policy, RejectsEmptyRuleList) {
  EXPECT_THROW(Policy(two_fields(), {}), std::invalid_argument);
}

TEST(Policy, EvaluateThrowsOnFallThrough) {
  const Schema s = two_fields();
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept)});
  EXPECT_FALSE(p.first_match({9, 0}).has_value());
  EXPECT_THROW(p.evaluate({9, 0}), std::logic_error);
}

TEST(Policy, CatchAllDetection) {
  EXPECT_TRUE(sample().last_rule_is_catch_all());
  const Schema s = two_fields();
  const Policy no_catch_all(
      s, {rule(s, Interval(0, 15), Interval(0, 6), kAccept)});
  EXPECT_FALSE(no_catch_all.last_rule_is_catch_all());
}

TEST(Policy, InsertShiftsRules) {
  Policy p = sample();
  const Schema s = p.schema();
  p.insert(0, rule(s, Interval(4, 4), Interval(4, 4), kDiscard));
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.evaluate({4, 4}), kDiscard);  // new head rule wins
  EXPECT_THROW(p.insert(9, Rule::catch_all(s, kAccept)), std::out_of_range);
}

TEST(Policy, EraseRule) {
  Policy p = sample();
  p.erase(0);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.evaluate({4, 2}), kDiscard);  // rule 2 now first
  EXPECT_THROW(p.erase(5), std::out_of_range);
}

TEST(Policy, EraseLastRuleForbidden) {
  const Schema s = two_fields();
  Policy p(s, {Rule::catch_all(s, kAccept)});
  EXPECT_THROW(p.erase(0), std::logic_error);
}

TEST(Policy, ReplaceRule) {
  Policy p = sample();
  const Schema s = p.schema();
  p.replace(0, rule(s, Interval(0, 5), Interval(0, 7), kDiscard));
  EXPECT_EQ(p.evaluate({4, 2}), kDiscard);
  EXPECT_THROW(p.replace(5, Rule::catch_all(s, kAccept)),
               std::out_of_range);
}

TEST(Policy, MoveReordersRules) {
  Policy p = sample();
  p.move(0, 1);  // demote the accept rule below the discard rule
  EXPECT_EQ(p.evaluate({4, 2}), kDiscard);
  p.move(1, 0);  // and back
  EXPECT_EQ(p.evaluate({4, 2}), kAccept);
  EXPECT_THROW(p.move(0, 9), std::out_of_range);
}

TEST(Policy, MoveToSamePositionIsNoop) {
  Policy p = sample();
  p.move(1, 1);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.evaluate({8, 2}), kDiscard);
}

}  // namespace
}  // namespace dfw
