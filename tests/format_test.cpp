// Formatter tests: field-aware rendering (CIDR, mnemonics, ranges) and the
// parser round-trip guarantee the discrepancy reports depend on.

#include <gtest/gtest.h>

#include "fw/format.hpp"
#include "fw/parser.hpp"
#include "net/ipv4.hpp"

namespace dfw {
namespace {

const Schema kSchema = five_tuple_schema();
const DecisionSet& kDecisions = default_decisions();

TEST(Format, WildcardRendersAsStar) {
  EXPECT_EQ(format_spec(kSchema.field(0), IntervalSet(kSchema.domain(0))),
            "*");
}

TEST(Format, CidrAlignedIntervalRendersAsPrefix) {
  const IntervalSet s(Interval(*parse_ipv4("224.168.0.0"),
                               *parse_ipv4("224.168.255.255")));
  EXPECT_EQ(format_spec(kSchema.field(0), s), "224.168.0.0/16");
}

TEST(Format, HostRendersAsSlash32) {
  const IntervalSet s(Interval::point(*parse_ipv4("192.168.0.1")));
  EXPECT_EQ(format_spec(kSchema.field(1), s), "192.168.0.1/32");
}

TEST(Format, NonAlignedIpIntervalRendersAsRange) {
  const IntervalSet s(
      Interval(*parse_ipv4("10.0.0.1"), *parse_ipv4("10.0.0.9")));
  EXPECT_EQ(format_spec(kSchema.field(0), s), "10.0.0.1-10.0.0.9");
}

TEST(Format, PortsAndRanges) {
  EXPECT_EQ(format_spec(kSchema.field(3), IntervalSet(Interval::point(25))),
            "25");
  EXPECT_EQ(format_spec(kSchema.field(3), IntervalSet(Interval(0, 1023))),
            "0-1023");
  IntervalSet multi;
  multi.add(Interval::point(25));
  multi.add(Interval(80, 81));
  EXPECT_EQ(format_spec(kSchema.field(3), multi), "25,80-81");
}

TEST(Format, ProtocolMnemonics) {
  EXPECT_EQ(format_spec(kSchema.field(4), IntervalSet(Interval::point(6))),
            "tcp");
  EXPECT_EQ(format_spec(kSchema.field(4), IntervalSet(Interval::point(17))),
            "udp");
  EXPECT_EQ(format_spec(kSchema.field(4), IntervalSet(Interval::point(1))),
            "icmp");
  EXPECT_EQ(format_spec(kSchema.field(4), IntervalSet(Interval::point(47))),
            "47");
  // Binary protocol domain (paper example schema).
  const Schema ex = example_schema();
  EXPECT_EQ(format_spec(ex.field(4), IntervalSet(Interval::point(0))),
            "tcp");
  EXPECT_EQ(format_spec(ex.field(4), IntervalSet(Interval::point(1))),
            "udp");
}

TEST(Format, RuleOmitsWildcards) {
  const Rule r = parse_rule(kSchema, kDecisions,
                            "discard sip=224.168.0.0/16 dport=25");
  EXPECT_EQ(format_rule(kSchema, kDecisions, r),
            "discard sip=224.168.0.0/16 dport=25");
}

TEST(Format, CatchAllRendersBareDecision) {
  EXPECT_EQ(format_rule(kSchema, kDecisions,
                        Rule::catch_all(kSchema, kAccept)),
            "accept");
}

TEST(Format, PolicyRoundTripsThroughParser) {
  const std::string text =
      "discard sip=224.168.0.0/16\n"
      "accept dip=192.168.0.1/32 dport=25 proto=tcp\n"
      "discard dip=192.168.0.1/32\n"
      "accept\n";
  const Policy p = parse_policy(kSchema, kDecisions, text);
  const std::string rendered = format_policy(p, kDecisions);
  EXPECT_EQ(rendered, text);
  // And parsing the rendering yields the same rules.
  const Policy reparsed = parse_policy(kSchema, kDecisions, rendered);
  ASSERT_EQ(reparsed.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(reparsed.rule(i), p.rule(i));
  }
}

TEST(Format, TableStyleRendering) {
  const Policy p =
      parse_policy(kSchema, kDecisions, "discard dport=25\naccept\n");
  const std::string table = format_policy_table(p, kDecisions);
  EXPECT_NE(table.find("r1: "), std::string::npos);
  EXPECT_NE(table.find("dport in 25"), std::string::npos);
  EXPECT_NE(table.find("-> discard"), std::string::npos);
  EXPECT_NE(table.find("r2: "), std::string::npos);
}

}  // namespace
}  // namespace dfw
