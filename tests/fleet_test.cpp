// src/fleet: the fleet-scale audit pipeline. Manifest/directory intake,
// per-device statuses (including the global-budget partial semantics),
// cross-device fingerprint dedup, pairwise/N-way divergence, and the
// determinism contract: for a run that completes, the text/JSON/SARIF
// reports are byte-identical at every thread count. The CLI driver is
// exercised in-process, generator mode included.

#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/cli.hpp"
#include "fw/format.hpp"
#include "lint/sarif.hpp"
#include "rt/executor.hpp"
#include "synth/synth.hpp"

#ifndef DFW_CORPUS_DIR
#error "DFW_CORPUS_DIR must point at tests/corpus (set by CMake)"
#endif

namespace dfw::fleet {
namespace {

// ---------------------------------------------------------------------------
// Helpers

FleetSource native_source(std::string name, std::string text) {
  FleetSource source;
  source.item.format = DeviceFormat::kNative;
  source.item.path = name;
  source.item.name = std::move(name);
  source.text = std::move(text);
  return source;
}

/// A fleet of native-format sources rendered from a synthetic fleet.
std::vector<FleetSource> synth_sources(std::size_t sites, std::size_t rules,
                                       std::uint64_t seed) {
  FleetSynthConfig config;
  config.sites = sites;
  config.base.num_rules = rules;
  config.seed = seed;
  const std::vector<Policy> fleet = make_fleet(config);
  std::vector<FleetSource> sources;
  sources.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    sources.push_back(native_source("site" + std::to_string(i) + ".fw",
                                    format_policy(fleet[i],
                                                  default_decisions())));
  }
  return sources;
}

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  out << text;
  return path;
}

int cli(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_fleet_cli(args, out, err);
  if (out_text != nullptr) {
    *out_text = out.str();
  }
  if (err_text != nullptr) {
    *err_text = err.str();
  }
  return code;
}

// ---------------------------------------------------------------------------
// Manifest parsing and directory scans

TEST(FleetManifest, ParsesFormatsOptionsCommentsAndBlanks) {
  const auto items = parse_fleet_manifest(
      "# fleet manifest\n"
      "\n"
      "native core.fw\n"
      "iptables edge.rules chain=FORWARD name=edge\n"
      "ip6tables edge6.rules\n"
      "cisco branch.acl acl=199\n",
      nullptr);
  ASSERT_TRUE(items.has_value());
  ASSERT_EQ(items->size(), 4u);
  EXPECT_EQ((*items)[0].format, DeviceFormat::kNative);
  EXPECT_EQ((*items)[0].name, "core.fw");  // defaults to the path
  EXPECT_EQ((*items)[1].format, DeviceFormat::kIptables);
  EXPECT_EQ((*items)[1].chain, "FORWARD");
  EXPECT_EQ((*items)[1].name, "edge");
  EXPECT_EQ((*items)[2].format, DeviceFormat::kIp6tables);
  EXPECT_EQ((*items)[3].format, DeviceFormat::kCisco);
  EXPECT_EQ((*items)[3].acl, "199");
}

TEST(FleetManifest, RejectsMalformedLinesWithLineNumbers) {
  std::string error;
  EXPECT_FALSE(
      parse_fleet_manifest("pf ruleset.conf\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("unknown format"), std::string::npos);
  EXPECT_FALSE(parse_fleet_manifest("native a.fw\nnative\n", &error)
                   .has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("missing config path"), std::string::npos);
  EXPECT_FALSE(
      parse_fleet_manifest("native a.fw wat=1\n", &error).has_value());
  EXPECT_NE(error.find("unknown option"), std::string::npos);
}

TEST(FleetManifest, EmptyTextIsAnEmptyFleet) {
  const auto items = parse_fleet_manifest("", nullptr);
  ASSERT_TRUE(items.has_value());
  EXPECT_TRUE(items->empty());
}

TEST(FleetScan, PicksUpKnownExtensionsSorted) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "fleet_scan";
  fs::create_directories(dir);
  for (const char* name : {"b.fw", "a.rules", "c.acl", "notes.txt"}) {
    std::ofstream((dir / name).string()) << "# placeholder\n";
  }
  const std::vector<FleetItem> items = scan_fleet_dir(dir.string());
  ASSERT_EQ(items.size(), 3u);  // notes.txt ignored
  EXPECT_EQ(items[0].name, "a.rules");
  EXPECT_EQ(items[0].format, DeviceFormat::kIptables);
  EXPECT_EQ(items[1].name, "b.fw");
  EXPECT_EQ(items[1].format, DeviceFormat::kNative);
  EXPECT_EQ(items[2].name, "c.acl");
  EXPECT_EQ(items[2].format, DeviceFormat::kCisco);
}

// ---------------------------------------------------------------------------
// run_fleet: statuses, dedup, divergence

TEST(FleetRun, MixedStatusesAreRecordedPerDevice) {
  std::vector<FleetSource> sources;
  // Clean: two disjoint halves, no findings, not comprehensive.
  sources.push_back(native_source(
      "clean.fw", "discard sip=0.0.0.0/1\naccept sip=128.0.0.0/1\n"));
  // Findings: a shadowed rule under a catch-all.
  sources.push_back(native_source(
      "findings.fw",
      "accept dport=25\naccept dport=25 proto=tcp\ndiscard\n"));
  // Parse error.
  sources.push_back(native_source("broken.fw", "frobnicate everything\n"));
  const FleetReport report = run_fleet(sources);
  ASSERT_EQ(report.devices.size(), 3u);
  EXPECT_EQ(report.devices[0].status, DeviceStatus::kOk);
  EXPECT_EQ(report.devices[1].status, DeviceStatus::kFindings);
  EXPECT_FALSE(report.devices[1].diagnostics.empty());
  EXPECT_TRUE(report.devices[1].comparable);
  EXPECT_EQ(report.devices[2].status, DeviceStatus::kParseError);
  EXPECT_FALSE(report.devices[2].message.empty());
  EXPECT_TRUE(report.complete);
  EXPECT_GT(report.findings_total, 0u);
}

TEST(FleetRun, SimplifyStageShrinksAndIsProven) {
  std::vector<FleetSource> sources;
  // An exact duplicate pair: the copy is dead, simplify removes it.
  sources.push_back(native_source(
      "dup.fw", "accept dport=80 proto=tcp\naccept dport=80 proto=tcp\n"
                "discard\n"));
  const FleetReport report = run_fleet(sources);
  ASSERT_EQ(report.devices.size(), 1u);
  const DeviceReport& dev = report.devices[0];
  EXPECT_EQ(dev.simplify.rules_before, 3u);
  EXPECT_LT(dev.simplify.rules_after, dev.simplify.rules_before);
  EXPECT_EQ(dev.simplify.proof, ProofStatus::kProven);
}

TEST(FleetRun, IdenticalConfigsDeduplicateByFingerprint) {
  const std::string text =
      "accept dport=25\naccept dport=25 proto=tcp\ndiscard\n";
  std::vector<FleetSource> sources;
  sources.push_back(native_source("siteA.fw", text));
  sources.push_back(native_source("siteB.fw", text));
  FleetOptions options;
  options.simplify = false;  // keep the shadowed rule for lint to flag
  const FleetReport report = run_fleet(sources, options);
  EXPECT_GT(report.findings_total, 0u);
  EXPECT_EQ(report.findings_total, report.findings_distinct * 2);
  const std::string sarif = render_fleet_sarif(report);
  EXPECT_TRUE(lint::validate_sarif(sarif).ok);
  EXPECT_NE(sarif.find("(seen on 2 devices)"), std::string::npos);
}

TEST(FleetRun, PairwiseCompareFindsDivergences) {
  std::vector<FleetSource> sources;
  sources.push_back(
      native_source("a.fw", "accept dport=80 proto=tcp\ndiscard\n"));
  sources.push_back(
      native_source("b.fw", "discard dport=80 proto=tcp\ndiscard\n"));
  FleetOptions options;
  options.compare = CompareMode::kPairs;
  const FleetReport report = run_fleet(sources, options);
  EXPECT_TRUE(report.compare_complete);
  EXPECT_GT(report.divergences_total, 0u);
  ASSERT_FALSE(report.divergences.empty());
  const Divergence& d = report.divergences[0];
  EXPECT_EQ(d.devices.size(), 2u);
  EXPECT_EQ(d.decisions.size(), 2u);
  EXPECT_NE(d.decisions[0], d.decisions[1]);
  EXPECT_FALSE(d.text.empty());
  EXPECT_NE(render_fleet_text(report).find("diverge"), std::string::npos);
}

TEST(FleetRun, NwayCompareAgreesOnCleanClones) {
  const std::string text = "accept dport=443 proto=tcp\ndiscard\n";
  std::vector<FleetSource> sources;
  sources.push_back(native_source("a.fw", text));
  sources.push_back(native_source("b.fw", text));
  sources.push_back(native_source("c.fw", text));
  FleetOptions options;
  options.compare = CompareMode::kNway;
  const FleetReport report = run_fleet(sources, options);
  EXPECT_TRUE(report.compare_complete);
  EXPECT_EQ(report.divergences_total, 0u);
}

TEST(FleetRun, NonComparableDevicesAreLeftOutOfCompare) {
  std::vector<FleetSource> sources;
  // No catch-all: comparable = false, the compare stage must skip it
  // rather than throw on a non-comprehensive policy.
  sources.push_back(native_source("partial-cover.fw",
                                  "accept dport=80 proto=tcp\n"));
  sources.push_back(
      native_source("a.fw", "accept dport=80 proto=tcp\ndiscard\n"));
  sources.push_back(
      native_source("b.fw", "discard dport=80 proto=tcp\ndiscard\n"));
  FleetOptions options;
  options.compare = CompareMode::kPairs;
  const FleetReport report = run_fleet(sources, options);
  EXPECT_FALSE(report.devices[0].comparable);
  EXPECT_TRUE(report.compare_complete);
  EXPECT_GT(report.divergences_total, 0u);
  for (const Divergence& d : report.divergences) {
    for (const std::string& name : d.devices) {
      EXPECT_NE(name, "partial-cover.fw");
    }
  }
}

TEST(FleetRun, DivergenceCapCountsTheFullTotal) {
  std::vector<FleetSource> sources;
  // Two accept regions on different fields: simplify cannot merge them
  // (they differ in more than one field), so the compare walk reports
  // more than one divergence class against the all-discard device.
  sources.push_back(native_source(
      "a.fw",
      "accept dport=80 proto=tcp\naccept sip=10.0.0.0/8 proto=udp\n"
      "discard\n"));
  sources.push_back(native_source("b.fw", "discard\n"));
  FleetOptions options;
  options.compare = CompareMode::kPairs;
  options.max_divergences = 1;
  const FleetReport report = run_fleet(sources, options);
  EXPECT_EQ(report.divergences.size(), 1u);
  EXPECT_GT(report.divergences_total, 1u);
  EXPECT_NE(render_fleet_json(report).find("\"divergences\":"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Governance: one global budget, honest per-device statuses.

TEST(FleetGovern, GlobalBudgetExhaustionDegradesToPartialStatuses) {
  std::vector<FleetSource> sources = synth_sources(12, 80, 99);
  RunContext::Config rc;
  rc.budgets.max_nodes = 400;
  RunContext context(std::move(rc));
  FleetOptions options;
  options.run.context = &context;  // serial: deterministic breach point
  const FleetReport report = run_fleet(sources, options);
  EXPECT_FALSE(report.complete);
  EXPECT_NE(report.status, ErrorCode::kOk);
  EXPECT_NE(report.message.find("budget"), std::string::npos);
  std::size_t partial = 0;
  std::size_t skipped = 0;
  for (const DeviceReport& dev : report.devices) {
    partial += dev.status == DeviceStatus::kPartial ? 1 : 0;
    skipped += dev.status == DeviceStatus::kSkipped ? 1 : 0;
    if (dev.status == DeviceStatus::kPartial ||
        dev.status == DeviceStatus::kSkipped) {
      EXPECT_FALSE(dev.message.empty());
    }
  }
  EXPECT_GE(partial, 1u);   // the breaching device says so
  EXPECT_GE(skipped, 1u);   // devices after the breach never started
  // The partial run still renders everywhere, clearly marked.
  EXPECT_NE(render_fleet_text(report).find("PARTIAL"), std::string::npos);
  const std::string sarif = render_fleet_sarif(report);
  EXPECT_TRUE(lint::validate_sarif(sarif).ok);
  EXPECT_NE(sarif.find("\"executionSuccessful\":false"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: byte-identical reports at 1/2/8 threads.

TEST(FleetDeterminism, ReportsAreByteIdenticalAcrossThreadCounts) {
  const std::vector<FleetSource> sources = synth_sources(10, 50, 7);
  FleetOptions options;
  options.compare = CompareMode::kPairs;
  const FleetReport serial = run_fleet(sources, options);
  const std::string text = render_fleet_text(serial);
  const std::string json = render_fleet_json(serial);
  const std::string sarif = render_fleet_sarif(serial);
  EXPECT_TRUE(lint::validate_sarif(sarif).ok);
  for (const std::size_t threads : {2u, 8u}) {
    Executor executor(threads);
    FleetOptions parallel = options;
    parallel.run.executor = &executor;
    const FleetReport report = run_fleet(sources, parallel);
    EXPECT_EQ(render_fleet_text(report), text) << threads << " threads";
    EXPECT_EQ(render_fleet_json(report), json) << threads << " threads";
    EXPECT_EQ(render_fleet_sarif(report), sarif) << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// The CLI, in-process.

TEST(FleetCli, UsageErrorsExitTwo) {
  std::string err;
  EXPECT_EQ(cli({}, nullptr, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(cli({"--no-such-flag", "x"}, nullptr, &err), 2);
  EXPECT_EQ(cli({"--compare=sideways", "x"}, nullptr, &err), 2);
  EXPECT_EQ(cli({"--output=yaml", "x"}, nullptr, &err), 2);
  EXPECT_EQ(cli({"--generate=0", "--out=x"}, nullptr, &err), 2);
  EXPECT_EQ(cli({"--generate=3"}, nullptr, &err), 2);  // no --out
  EXPECT_EQ(cli({::testing::TempDir() + "no_such_fleet.manifest"}, nullptr,
                &err),
            2);
  const std::string bad =
      write_temp("fleet_bad.manifest", "pf firewall.conf\n");
  EXPECT_EQ(cli({bad}, nullptr, &err), 2);
  EXPECT_NE(err.find("line 1"), std::string::npos);
}

TEST(FleetCli, GeneratedFleetAnalysesEndToEnd) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::path(::testing::TempDir()) / "fleet_cli_gen").string();
  fs::remove_all(dir);
  std::string out;
  ASSERT_EQ(cli({"--generate=5", "--out=" + dir, "--rules=30"}, &out), 0);
  EXPECT_NE(out.find("wrote 5 device(s)"), std::string::npos);
  ASSERT_TRUE(fs::exists(fs::path(dir) / "fleet.manifest"));
  ASSERT_TRUE(fs::exists(fs::path(dir) / "site0000.fw"));

  // Directory scan and manifest intake see the same fleet.
  std::string dir_out;
  const int dir_code = cli({dir}, &dir_out);
  std::string man_out;
  const int man_code =
      cli({(fs::path(dir) / "fleet.manifest").string()}, &man_out);
  EXPECT_EQ(dir_code, man_code);
  EXPECT_NE(dir_out.find("fleet: 5 device(s)"), std::string::npos);
  EXPECT_NE(man_out.find("fleet: 5 device(s)"), std::string::npos);
  // The generator salts in redundancy; simplify must claw some back.
  EXPECT_NE(dir_out.find("proof proven"), std::string::npos);
}

TEST(FleetCli, SarifOutputIsDeterministicAndValid) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::path(::testing::TempDir()) / "fleet_cli_sarif").string();
  fs::remove_all(dir);
  ASSERT_EQ(cli({"--generate=4", "--out=" + dir, "--rules=25"}, nullptr), 0);
  std::string one;
  std::string eight;
  const int code1 = cli({"--output=sarif", "--threads=1", dir}, &one);
  const int code8 = cli({"--output=sarif", "--threads=8", dir}, &eight);
  EXPECT_EQ(code1, code8);
  EXPECT_EQ(one, eight);
  EXPECT_TRUE(lint::validate_sarif(one).ok);
}

TEST(FleetCli, ReportFileAndExitCodes) {
  namespace fs = std::filesystem;
  // A clean single-device fleet exits 0.
  const std::string clean = write_temp(
      "fleet_clean.fw", "discard sip=0.0.0.0/1\naccept sip=128.0.0.0/1\n");
  const std::string manifest = write_temp(
      "fleet_clean.manifest",
      "native " + fs::path(clean).filename().string() + "\n");
  std::string out;
  EXPECT_EQ(cli({manifest}, &out), 0) << out;
  EXPECT_NE(out.find("ok 1"), std::string::npos);

  // Findings exit 1, and --report lands the JSON document on disk.
  const std::string noisy = write_temp(
      "fleet_noisy.fw", "accept dport=25\naccept dport=25 proto=tcp\n"
                        "discard\n");
  const std::string noisy_manifest = write_temp(
      "fleet_noisy.manifest",
      "native " + fs::path(noisy).filename().string() + " name=noisy\n");
  const std::string report_path =
      ::testing::TempDir() + "fleet_report.json";
  EXPECT_EQ(cli({"--report=" + report_path, noisy_manifest}, &out), 1);
  std::ifstream in(report_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"dfw-fleet-report-v1\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"noisy\""), std::string::npos);
}

TEST(FleetCli, CorpusManifestMixesAllFormats) {
  const std::string manifest =
      std::string(DFW_CORPUS_DIR) + "/fleet/valid_basic.manifest";
  std::string out;
  const int code = cli({"--output=json", manifest}, &out);
  EXPECT_EQ(code, 1);  // the corpus seeds carry known lint findings
  EXPECT_NE(out.find("\"iptables\""), std::string::npos);
  EXPECT_NE(out.find("\"cisco\""), std::string::npos);
  EXPECT_NE(out.find("\"native\""), std::string::npos);
}

TEST(FleetCli, HelpExitsClean) {
  std::string out;
  EXPECT_EQ(cli({"--help"}, &out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
  EXPECT_NE(out.find("--generate"), std::string::npos);
}

}  // namespace
}  // namespace dfw::fleet
