// Executor unit tests: inline semantics, full and exactly-once index
// coverage, nested submission, exception propagation, zero-task edge
// cases, metrics, and concurrent external callers. These are the suites
// the DFW_SANITIZE=thread build is expected to exercise.

#include "rt/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "rt/govern.hpp"
#include "rt/parallel.hpp"

namespace dfw {
namespace {

TEST(ExecutorTest, InlineExecutorRunsOnCallingThread) {
  Executor& ex = Executor::inline_executor();
  EXPECT_TRUE(ex.is_inline());
  EXPECT_EQ(ex.thread_count(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  ex.parallel_for(64, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;  // safe: everything runs on this thread
  });
  EXPECT_EQ(calls, 64u);
}

TEST(ExecutorTest, ZeroTasksIsANoOp) {
  Executor pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  pool.parallel_for_chunked(0, 16, [&](std::size_t, std::size_t) {
    called = true;
  });
  Executor::inline_executor().parallel_for(0,
                                           [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ExecutorTest, EveryIndexRunsExactlyOnce) {
  Executor pool(4);
  constexpr std::size_t kN = 2000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, ChunkedCoversAllWithBoundedChunks) {
  Executor pool(3);
  constexpr std::size_t kN = 1000;
  constexpr std::size_t kGrain = 64;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for_chunked(kN, kGrain, [&](std::size_t begin,
                                            std::size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end - begin, kGrain);
    ASSERT_LE(end, kN);
    for (std::size_t i = begin; i < end; ++i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, ParallelMapPreservesIndexOrder) {
  Executor pool(4);
  const std::vector<int> out =
      parallel_map<int>(pool, 500, [](std::size_t i) {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ExecutorTest, ParallelMapSupportsMoveOnlyResults) {
  Executor pool(2);
  const auto out = parallel_map<std::unique_ptr<int>>(
      pool, 100, [](std::size_t i) {
        return std::make_unique<int>(static_cast<int>(i));
      });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NE(out[i], nullptr);
    EXPECT_EQ(*out[i], static_cast<int>(i));
  }
}

TEST(ExecutorTest, NestedSubmissionCompletes) {
  Executor pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(50, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 400);
}

TEST(ExecutorTest, NestedSubmissionOnSingleWorkerDoesNotDeadlock) {
  Executor pool(1);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ExecutorTest, SmallestIndexExceptionWinsAndAllIndicesRun) {
  Executor pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(1000, [&](std::size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i >= 500) {
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "parallel_for should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "500");
  }
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ExecutorTest, InlineExceptionMatchesPoolSemantics) {
  std::size_t ran = 0;
  try {
    Executor::inline_executor().parallel_for(10, [&](std::size_t i) {
      ++ran;
      if (i >= 3) {
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "parallel_for should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
  EXPECT_EQ(ran, 10u);  // remaining iterations still run
}

TEST(ExecutorTest, ThrowingTaskPreservesErrorTypeAcrossThreadCounts) {
  // A dfw::Error thrown inside a worker must arrive at the join point as
  // a dfw::Error with its code intact — not sliced to runtime_error — at
  // every pool width.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    Executor pool(threads);
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i == 7) {
          throw Error(ErrorCode::kInternal, "task 7 failed");
        }
      });
      FAIL() << "parallel_for should have rethrown (threads=" << threads
             << ")";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInternal);
      EXPECT_NE(std::string(e.what()).find("task 7 failed"),
                std::string::npos);
    }
    EXPECT_EQ(ran.load(), 64) << "threads=" << threads;
  }
}

TEST(ExecutorTest, GovernedBatchSkipsEverythingWhenPreCancelled) {
  CancelSource source;
  source.cancel();
  RunContext::Config config;
  config.cancel = source.token();
  RunContext ctx(std::move(config));

  Executor pool(2);
  std::atomic<int> ran{0};
  for (Executor* ex : {&Executor::inline_executor(), &pool}) {
    try {
      ex->parallel_for(100, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
      }, &ctx);
      FAIL() << "governed batch over an aborted context should throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    }
  }
  EXPECT_EQ(ran.load(), 0) << "no chunk of a pre-cancelled batch may run";
}

TEST(ExecutorTest, GovernedBatchSkipsUnstartedAfterMidBatchBreach) {
  // Every iteration charges one node against a tiny budget, so whichever
  // iteration runs first breaches; iterations not yet started are skipped
  // rather than run, and the breach error wins at the join.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    RunContext ctx = RunContext::with_budgets({.max_nodes = 1});
    ctx.charge_nodes(1);  // next charge breaches
    Executor pool(threads);
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(10000, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
        ctx.charge_nodes(1);
      }, &ctx);
      FAIL() << "expected budget breach (threads=" << threads << ")";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kNodeBudgetExceeded);
    }
    // Only chunks already started before the first breach ran: far fewer
    // than the full batch.
    EXPECT_LT(ran.load(), 10000) << "threads=" << threads;
  }
}

TEST(ExecutorTest, GovernedBatchWithNullContextMatchesUngoverned) {
  Executor pool(2);
  std::atomic<int> ran{0};
  pool.parallel_for(128, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  }, nullptr);
  EXPECT_EQ(ran.load(), 128);
}

TEST(ExecutorTest, MetricsCountTasksAndBatches) {
  Executor pool(2);
  pool.parallel_for(100, [](std::size_t) {});
  const ExecutorMetrics m = pool.metrics();
  EXPECT_EQ(m.tasks_run, 100u);
  EXPECT_EQ(m.batches, 1u);
  EXPECT_GE(m.busy_ms, 0.0);
  pool.reset_metrics();
  const ExecutorMetrics zero = pool.metrics();
  EXPECT_EQ(zero.tasks_run, 0u);
  EXPECT_EQ(zero.steals, 0u);
  EXPECT_EQ(zero.batches, 0u);
  EXPECT_EQ(zero.busy_ms, 0.0);
}

TEST(ExecutorTest, PoolSurvivesManySequentialBatches) {
  Executor pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(32, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 31 * 32 / 2);
  }
  EXPECT_EQ(pool.metrics().batches, 200u);
}

TEST(ExecutorTest, ConcurrentExternalCallersShareThePool) {
  Executor pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.parallel_for(64, [&](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  EXPECT_EQ(total.load(), 4 * 20 * 64);
}

TEST(ExecutorTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(Executor::hardware_threads(), 1u);
}

}  // namespace
}  // namespace dfw
