// IntervalSet unit tests: canonical form, set algebra against brute force,
// and the edge cases (adjacency coalescing, empty results, saturation).

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "net/interval_set.hpp"

namespace dfw {
namespace {

// Brute-force model over a small universe for randomized algebra checks.
std::set<Value> model(const IntervalSet& s, Value universe_hi) {
  std::set<Value> values;
  for (Value v = 0; v <= universe_hi; ++v) {
    if (s.contains(v)) {
      values.insert(v);
    }
  }
  return values;
}

IntervalSet random_small_set(std::mt19937_64& rng, Value universe_hi) {
  IntervalSet s;
  std::uniform_int_distribution<int> count(0, 4);
  std::uniform_int_distribution<Value> point(0, universe_hi);
  const int n = count(rng);
  for (int i = 0; i < n; ++i) {
    const Value a = point(rng);
    const Value b = point(rng);
    s.add(Interval(std::min(a, b), std::max(a, b)));
  }
  return s;
}

TEST(IntervalSet, EmptyByDefault) {
  const IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(0));
}

TEST(IntervalSet, AddCoalescesAdjacentRuns) {
  IntervalSet s;
  s.add(Interval(0, 4));
  s.add(Interval(5, 9));  // adjacent: must merge into one run
  EXPECT_EQ(s.run_count(), 1u);
  EXPECT_EQ(s.intervals().front(), Interval(0, 9));
}

TEST(IntervalSet, AddKeepsDisjointRunsSorted) {
  IntervalSet s;
  s.add(Interval(10, 20));
  s.add(Interval(0, 3));
  s.add(Interval(30, 35));
  ASSERT_EQ(s.run_count(), 3u);
  EXPECT_EQ(s.intervals()[0], Interval(0, 3));
  EXPECT_EQ(s.intervals()[1], Interval(10, 20));
  EXPECT_EQ(s.intervals()[2], Interval(30, 35));
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 35u);
}

TEST(IntervalSet, AddBridgingRunCollapsesNeighbours) {
  IntervalSet s;
  s.add(Interval(0, 3));
  s.add(Interval(8, 10));
  s.add(Interval(2, 9));  // bridges both runs
  EXPECT_EQ(s.run_count(), 1u);
  EXPECT_EQ(s.intervals().front(), Interval(0, 10));
}

TEST(IntervalSet, InitializerListAndEquality) {
  const IntervalSet a{Interval(0, 3), Interval(5, 9)};
  IntervalSet b;
  b.add(Interval(5, 9));
  b.add(Interval(0, 3));
  EXPECT_EQ(a, b);
}

TEST(IntervalSet, SizeSumsRuns) {
  const IntervalSet s{Interval(0, 3), Interval(10, 11)};
  EXPECT_EQ(s.size(), 6u);
}

TEST(IntervalSet, SizeSaturates) {
  const IntervalSet s{Interval(0, UINT64_MAX)};
  EXPECT_EQ(s.size(), UINT64_MAX);
}

TEST(IntervalSet, ContainsUsesBinarySearch) {
  IntervalSet s;
  for (Value base = 0; base < 1000; base += 10) {
    s.add(Interval(base, base + 4));
  }
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(994));
  EXPECT_FALSE(s.contains(995));
  EXPECT_FALSE(s.contains(7));
}

TEST(IntervalSet, SubsetContainment) {
  const IntervalSet big{Interval(0, 100)};
  const IntervalSet small{Interval(5, 6), Interval(50, 60)};
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(small.contains(IntervalSet{}));
}

TEST(IntervalSet, MinMaxOnEmptyThrow) {
  const IntervalSet s;
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.max(), std::logic_error);
}

TEST(IntervalSet, UniteIntersectSubtractAgainstBruteForce) {
  std::mt19937_64 rng(77);
  constexpr Value kUniverse = 40;
  for (int trial = 0; trial < 200; ++trial) {
    const IntervalSet a = random_small_set(rng, kUniverse);
    const IntervalSet b = random_small_set(rng, kUniverse);
    const auto ma = model(a, kUniverse);
    const auto mb = model(b, kUniverse);

    const auto mu = model(a.unite(b), kUniverse);
    const auto mi = model(a.intersect(b), kUniverse);
    const auto md = model(a.subtract(b), kUniverse);

    for (Value v = 0; v <= kUniverse; ++v) {
      const bool in_a = ma.count(v) > 0;
      const bool in_b = mb.count(v) > 0;
      EXPECT_EQ(mu.count(v) > 0, in_a || in_b) << "unite at " << v;
      EXPECT_EQ(mi.count(v) > 0, in_a && in_b) << "intersect at " << v;
      EXPECT_EQ(md.count(v) > 0, in_a && !in_b) << "subtract at " << v;
    }
  }
}

TEST(IntervalSet, ResultsAreCanonical) {
  std::mt19937_64 rng(78);
  for (int trial = 0; trial < 100; ++trial) {
    const IntervalSet a = random_small_set(rng, 30);
    const IntervalSet b = random_small_set(rng, 30);
    for (const IntervalSet& s :
         {a.unite(b), a.intersect(b), a.subtract(b)}) {
      // Canonical: sorted, disjoint, non-adjacent runs.
      for (std::size_t i = 0; i + 1 < s.intervals().size(); ++i) {
        EXPECT_LT(s.intervals()[i].hi() + 1, s.intervals()[i + 1].lo());
      }
    }
  }
}

TEST(IntervalSet, SubtractSplitsAroundHole) {
  const IntervalSet a{Interval(0, 10)};
  const IntervalSet hole{Interval(4, 6)};
  const IntervalSet diff = a.subtract(hole);
  ASSERT_EQ(diff.run_count(), 2u);
  EXPECT_EQ(diff.intervals()[0], Interval(0, 3));
  EXPECT_EQ(diff.intervals()[1], Interval(7, 10));
}

TEST(IntervalSet, OverlapsDetectsSharedValues) {
  const IntervalSet a{Interval(0, 4), Interval(10, 14)};
  EXPECT_TRUE(a.overlaps(IntervalSet{Interval(4, 5)}));
  EXPECT_FALSE(a.overlaps(IntervalSet{Interval(5, 9)}));
  EXPECT_FALSE(a.overlaps(IntervalSet{}));
}

TEST(IntervalSet, ToString) {
  const IntervalSet s{Interval(0, 3), Interval::point(9)};
  EXPECT_EQ(s.to_string(), "{[0, 3], [9]}");
  EXPECT_EQ(IntervalSet{}.to_string(), "{}");
}

}  // namespace
}  // namespace dfw
