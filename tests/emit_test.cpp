// Deployment-backend tests: emitted configurations must re-parse to
// policies equivalent to the source, expansions must be faithful, and the
// inexpressible cases must be rejected loudly.

#include <gtest/gtest.h>

#include "adapters/cisco.hpp"
#include "adapters/emit.hpp"
#include "adapters/iptables.hpp"
#include "fdd/compare.hpp"
#include "fw/parser.hpp"
#include "net/ipv4.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

const Schema kSchema = five_tuple_schema();
const DecisionSet& kDecisions = default_decisions();

Policy sample() {
  return parse_policy(kSchema, kDecisions,
                      "discard sip=203.0.113.0/24\n"
                      "accept dip=10.1.0.0/24 dport=80,443 proto=tcp\n"
                      "accept dip=10.1.1.25 dport=25 proto=tcp\n"
                      "accept sip=10.9.0.0/16 dport=22 proto=tcp\n"
                      "discard\n");
}

TEST(Emit, IptablesRoundTripsToEquivalentPolicy) {
  const Policy p = sample();
  const std::string text = emit_iptables_save(p, "INPUT");
  const Policy reparsed = parse_iptables_save(text, "INPUT");
  EXPECT_TRUE(equivalent(p, reparsed));
}

TEST(Emit, CiscoRoundTripsToEquivalentPolicy) {
  const Policy p = sample();
  const std::string text = emit_cisco_acl(p, "120");
  const Policy reparsed = parse_cisco_acl(text, "120");
  EXPECT_TRUE(equivalent(p, reparsed));
}

TEST(Emit, CatchAllBecomesChainPolicy) {
  const Policy p = sample();
  const std::string text = emit_iptables_save(p, "INPUT");
  EXPECT_NE(text.find(":INPUT DROP [0:0]"), std::string::npos);
  // Accepting default renders as ACCEPT.
  const Policy open(kSchema, {Rule::catch_all(kSchema, kAccept)});
  EXPECT_NE(emit_iptables_save(open, "FWD").find(":FWD ACCEPT"),
            std::string::npos);
}

TEST(Emit, CiscoImplicitDenyOmitted) {
  const Policy p = sample();
  const std::string text = emit_cisco_acl(p, "120");
  // No trailing "deny ip any any": the implicit deny covers it.
  EXPECT_EQ(text.find("deny ip any any"), std::string::npos);
  // An accepting default must be explicit.
  const Policy open = parse_policy(kSchema, kDecisions,
                                   "discard dport=23 proto=tcp\naccept\n");
  EXPECT_NE(emit_cisco_acl(open, "7").find("permit ip any any"),
            std::string::npos);
}

TEST(Emit, MultiRunConjunctsExpandFaithfully) {
  // dport 80,443 is two runs: expect two emitted lines for that rule.
  const Policy p = parse_policy(kSchema, kDecisions,
                                "accept dport=80,443 proto=tcp\ndiscard\n");
  const std::string text = emit_iptables_save(p, "INPUT");
  EXPECT_NE(text.find("--dport 80 -j ACCEPT"), std::string::npos);
  EXPECT_NE(text.find("--dport 443 -j ACCEPT"), std::string::npos);
  EXPECT_TRUE(equivalent(p, parse_iptables_save(text, "INPUT")));
}

TEST(Emit, NonCidrIntervalSplitsIntoPrefixes) {
  // 10.0.0.1-10.0.0.6 needs several prefixes; the expansion must cover
  // exactly that range.
  const Policy p = parse_policy(
      kSchema, kDecisions,
      "discard sip=10.0.0.1-10.0.0.6\naccept\n");
  const std::string ipt = emit_iptables_save(p, "INPUT");
  EXPECT_TRUE(equivalent(p, parse_iptables_save(ipt, "INPUT")));
  const std::string acl = emit_cisco_acl(p, "9");
  EXPECT_TRUE(equivalent(p, parse_cisco_acl(acl, "9")));
}

TEST(Emit, CiscoPortOperators) {
  const Policy p = parse_policy(kSchema, kDecisions,
                                "accept dport=1024-2047 proto=udp\n"
                                "discard\n");
  const std::string text = emit_cisco_acl(p, "11");
  EXPECT_NE(text.find("range 1024 2047"), std::string::npos);
  EXPECT_TRUE(equivalent(p, parse_cisco_acl(text, "11")));
}

TEST(Emit, RejectsPortsWithoutProtocol) {
  const Policy p = parse_policy(kSchema, kDecisions,
                                "accept dport=25\ndiscard\n");
  EXPECT_THROW(emit_iptables_save(p, "INPUT"), std::invalid_argument);
  EXPECT_THROW(emit_cisco_acl(p, "5"), std::invalid_argument);
}

TEST(Emit, RejectsPortsWithNonPortProtocol) {
  const Policy p = parse_policy(kSchema, kDecisions,
                                "accept dport=25 proto=icmp\ndiscard\n");
  EXPECT_THROW(emit_iptables_save(p, "INPUT"), std::invalid_argument);
}

TEST(Emit, RejectsNonCatchAllTail) {
  const Policy p = parse_policy(kSchema, kDecisions,
                                "accept proto=tcp\ndiscard proto=udp\n");
  EXPECT_THROW(emit_iptables_save(p, "INPUT"), std::invalid_argument);
}

TEST(Emit, RejectsWrongSchema) {
  const Schema tiny({{"x", Interval(0, 7), FieldKind::kInteger}});
  const Policy p(tiny, {Rule::catch_all(tiny, kAccept)});
  EXPECT_THROW(emit_iptables_save(p, "INPUT"), std::invalid_argument);
}

TEST(Emit, ExpansionCapEnforced) {
  // An sip interval needing many prefixes times a multi-run dport exceeds
  // a tiny cap.
  const Policy p = parse_policy(
      kSchema, kDecisions,
      "discard sip=10.0.0.1-10.0.255.254 dport=22,80,443 proto=tcp\n"
      "accept\n");
  EXPECT_THROW(emit_iptables_save(p, "INPUT", 8), std::length_error);
  EXPECT_NO_THROW(emit_iptables_save(p, "INPUT", 4096));
}

TEST(Emit, NumericProtocolsSurvive) {
  const Policy p =
      parse_policy(kSchema, kDecisions, "discard proto=89\naccept\n");
  const std::string ipt = emit_iptables_save(p, "INPUT");
  EXPECT_NE(ipt.find("-p 89"), std::string::npos);
  EXPECT_TRUE(equivalent(p, parse_iptables_save(ipt, "INPUT")));
  const std::string acl = emit_cisco_acl(p, "13");
  EXPECT_TRUE(equivalent(p, parse_cisco_acl(acl, "13")));
}

TEST(Emit, EmptyDenyAclStillParses) {
  const Policy p(kSchema, {Rule::catch_all(kSchema, kDiscard)});
  const std::string acl = emit_cisco_acl(p, "15");
  EXPECT_TRUE(equivalent(p, parse_cisco_acl(acl, "15")));
}

TEST(Emit, SyntheticPoliciesRoundTripBothBackends) {
  // Synthetic rules whose protocol is always pinned (vendor languages
  // cannot express "any protocol, this port") round-trip through both
  // emitters to equivalent policies.
  SynthConfig config;
  config.num_rules = 25;
  config.any_proto_weight = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Policy p = synth_policy(config, rng);
    const Policy via_ipt = parse_iptables_save(
        emit_iptables_save(p, "INPUT", 1 << 16), "INPUT");
    EXPECT_TRUE(equivalent(p, via_ipt)) << "iptables seed " << seed;
    const Policy via_acl =
        parse_cisco_acl(emit_cisco_acl(p, "140", 1 << 16), "140");
    EXPECT_TRUE(equivalent(p, via_acl)) << "cisco seed " << seed;
  }
}

}  // namespace
}  // namespace dfw
