// IPv4 parsing/formatting unit tests, including a round-trip sweep and the
// malformed-input rejections a policy parser depends on.

#include <gtest/gtest.h>

#include "net/ipv4.hpp"

namespace dfw {
namespace {

TEST(Ipv4, ParsesDottedQuad) {
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), UINT32_MAX);
  EXPECT_EQ(parse_ipv4("192.168.0.1"), 0xC0A80001u);
  EXPECT_EQ(parse_ipv4("224.168.0.0"), 0xE0A80000u);
  EXPECT_EQ(parse_ipv4("10.0.0.1"), 0x0A000001u);
}

TEST(Ipv4, RejectsMalformedInput) {
  EXPECT_FALSE(parse_ipv4(""));
  EXPECT_FALSE(parse_ipv4("1.2.3"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5"));
  EXPECT_FALSE(parse_ipv4("256.0.0.1"));
  EXPECT_FALSE(parse_ipv4("1.2.3.999"));
  EXPECT_FALSE(parse_ipv4("1..2.3"));
  EXPECT_FALSE(parse_ipv4("a.b.c.d"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4 "));
  EXPECT_FALSE(parse_ipv4(" 1.2.3.4"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4x"));
  EXPECT_FALSE(parse_ipv4("1.2.3."));
  EXPECT_FALSE(parse_ipv4("1.2.3.0004"));  // more than 3 digits
}

TEST(Ipv4, FormatsDottedQuad) {
  EXPECT_EQ(format_ipv4(0), "0.0.0.0");
  EXPECT_EQ(format_ipv4(UINT32_MAX), "255.255.255.255");
  EXPECT_EQ(format_ipv4(0xC0A80001u), "192.168.0.1");
}

TEST(Ipv4, RoundTripSweep) {
  // Cover all octet boundary patterns without iterating 2^32 addresses.
  for (std::uint32_t hi : {0u, 1u, 127u, 128u, 255u}) {
    for (std::uint32_t lo : {0u, 1u, 254u, 255u}) {
      const std::uint32_t addr = (hi << 24) | (lo << 16) | (hi << 8) | lo;
      EXPECT_EQ(parse_ipv4(format_ipv4(addr)), addr);
    }
  }
}

}  // namespace
}  // namespace dfw
