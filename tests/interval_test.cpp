// Interval unit tests: invariants, containment, intersection, merging, and
// the 64-bit boundary behaviour the whole library leans on.

#include <gtest/gtest.h>

#include "net/interval.hpp"

namespace dfw {
namespace {

TEST(Interval, ConstructionAndAccessors) {
  const Interval iv(3, 9);
  EXPECT_EQ(iv.lo(), 3u);
  EXPECT_EQ(iv.hi(), 9u);
  EXPECT_EQ(iv.size(), 7u);
}

TEST(Interval, RejectsInvertedBounds) {
  EXPECT_THROW(Interval(5, 4), std::invalid_argument);
}

TEST(Interval, PointInterval) {
  const Interval p = Interval::point(42);
  EXPECT_EQ(p.lo(), 42u);
  EXPECT_EQ(p.hi(), 42u);
  EXPECT_EQ(p.size(), 1u);
}

TEST(Interval, FullDomainSizeSaturates) {
  const Interval full(0, UINT64_MAX);
  EXPECT_EQ(full.size(), UINT64_MAX);
}

TEST(Interval, ContainsValue) {
  const Interval iv(10, 20);
  EXPECT_TRUE(iv.contains(10));
  EXPECT_TRUE(iv.contains(15));
  EXPECT_TRUE(iv.contains(20));
  EXPECT_FALSE(iv.contains(9));
  EXPECT_FALSE(iv.contains(21));
}

TEST(Interval, ContainsInterval) {
  const Interval outer(0, 100);
  EXPECT_TRUE(outer.contains(Interval(0, 100)));
  EXPECT_TRUE(outer.contains(Interval(50, 60)));
  EXPECT_FALSE(outer.contains(Interval(50, 101)));
  EXPECT_FALSE(Interval(50, 60).contains(outer));
}

TEST(Interval, Overlaps) {
  EXPECT_TRUE(Interval(0, 5).overlaps(Interval(5, 9)));
  EXPECT_TRUE(Interval(0, 9).overlaps(Interval(3, 4)));
  EXPECT_FALSE(Interval(0, 4).overlaps(Interval(5, 9)));
}

TEST(Interval, Intersect) {
  const auto common = Interval(0, 10).intersect(Interval(5, 20));
  ASSERT_TRUE(common.has_value());
  EXPECT_EQ(*common, Interval(5, 10));
  EXPECT_FALSE(Interval(0, 4).intersect(Interval(5, 9)).has_value());
}

TEST(Interval, MergeableAdjacentAndOverlapping) {
  EXPECT_TRUE(Interval(0, 4).mergeable(Interval(5, 9)));   // adjacent
  EXPECT_TRUE(Interval(5, 9).mergeable(Interval(0, 4)));   // symmetric
  EXPECT_TRUE(Interval(0, 6).mergeable(Interval(5, 9)));   // overlapping
  EXPECT_FALSE(Interval(0, 3).mergeable(Interval(5, 9)));  // gap at 4
}

TEST(Interval, MergeableAtUint64Boundary) {
  // hi + 1 overflow must not wrap: [max, max] vs [0, 0] are not adjacent.
  EXPECT_FALSE(
      Interval(UINT64_MAX, UINT64_MAX).mergeable(Interval(0, 0)));
  EXPECT_TRUE(Interval(UINT64_MAX - 1, UINT64_MAX - 1)
                  .mergeable(Interval(UINT64_MAX, UINT64_MAX)));
}

TEST(Interval, MergeProducesUnion) {
  EXPECT_EQ(Interval(0, 4).merge(Interval(5, 9)), Interval(0, 9));
  EXPECT_EQ(Interval(3, 8).merge(Interval(5, 12)), Interval(3, 12));
  EXPECT_THROW(Interval(0, 3).merge(Interval(5, 9)), std::invalid_argument);
}

TEST(Interval, OrderingByLoThenHi) {
  EXPECT_LT(Interval(0, 5), Interval(1, 2));
  EXPECT_LT(Interval(1, 2), Interval(1, 3));
  EXPECT_FALSE(Interval(1, 3) < Interval(1, 3));
}

TEST(Interval, ToString) {
  EXPECT_EQ(Interval(3, 9).to_string(), "[3, 9]");
  EXPECT_EQ(Interval::point(7).to_string(), "[7]");
}

}  // namespace
}  // namespace dfw
