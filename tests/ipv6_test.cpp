// IPv6 tests: RFC 4291 parsing / RFC 5952 formatting, prefix-to-conjunct
// conversion, the paired-field schema, and the end-to-end pipeline over
// IPv6 policies.

#include <gtest/gtest.h>

#include "fdd/compare.hpp"
#include "fw/format.hpp"
#include "fw/parser.hpp"
#include "net/ipv6.hpp"

namespace dfw {
namespace {

TEST(Ipv6, ParsesFullForm) {
  const auto a = parse_ipv6("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->hi, 0x20010db800000000ull);
  EXPECT_EQ(a->lo, 0x0000000000000001ull);
}

TEST(Ipv6, ParsesCompressedForms) {
  EXPECT_EQ(parse_ipv6("::"), (Ipv6{0, 0}));
  EXPECT_EQ(parse_ipv6("::1"), (Ipv6{0, 1}));
  EXPECT_EQ(parse_ipv6("2001:db8::"), (Ipv6{0x20010db800000000ull, 0}));
  EXPECT_EQ(parse_ipv6("2001:db8::1"),
            (Ipv6{0x20010db800000000ull, 1}));
  EXPECT_EQ(parse_ipv6("fe80::a:b"),
            (Ipv6{0xfe80000000000000ull, 0x00000000000a000bull}));
  EXPECT_EQ(parse_ipv6("1:2:3:4:5:6:7:8"),
            (Ipv6{0x0001000200030004ull, 0x0005000600070008ull}));
}

TEST(Ipv6, RejectsMalformed) {
  EXPECT_FALSE(parse_ipv6(""));
  EXPECT_FALSE(parse_ipv6("1:2:3"));
  EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:8:9"));
  EXPECT_FALSE(parse_ipv6("::1::2"));
  EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7::8"));  // :: must hide >= 1 group
  EXPECT_FALSE(parse_ipv6("12345::"));
  EXPECT_FALSE(parse_ipv6("g::1"));
  EXPECT_FALSE(parse_ipv6("2001:db8"));
}

TEST(Ipv6, FormatsWithCompression) {
  EXPECT_EQ(format_ipv6({0, 0}), "::");
  EXPECT_EQ(format_ipv6({0, 1}), "::1");
  EXPECT_EQ(format_ipv6({0x20010db800000000ull, 0}), "2001:db8::");
  EXPECT_EQ(format_ipv6({0x20010db800000000ull, 1}), "2001:db8::1");
  EXPECT_EQ(format_ipv6({0x0001000000000000ull, 1}), "1::1");
  EXPECT_EQ(format_ipv6({0x0001000200030004ull, 0x0005000600070008ull}),
            "1:2:3:4:5:6:7:8");
  // A single zero group is not compressed (RFC 5952).
  EXPECT_EQ(format_ipv6({0x0001000000020003ull, 0x0004000500060007ull}),
            "1:0:2:3:4:5:6:7");
}

TEST(Ipv6, RoundTrips) {
  for (const char* text :
       {"::", "::1", "2001:db8::", "2001:db8::1", "fe80::a:b",
        "1:2:3:4:5:6:7:8", "ff02::1:ff00:42"}) {
    const auto addr = parse_ipv6(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(format_ipv6(*addr), text);
  }
}

TEST(Ipv6, PrefixToIntervals) {
  // /32: hi constrained to an aligned block, lo free.
  const auto p32 = parse_ipv6_prefix("2001:db8::/32");
  ASSERT_TRUE(p32.has_value());
  const auto [hi32, lo32] = p32->to_intervals();
  EXPECT_EQ(hi32.lo(), 0x20010db800000000ull);
  EXPECT_EQ(hi32.hi(), 0x20010db8ffffffffull);
  EXPECT_EQ(lo32, Interval(0, UINT64_MAX));
  // /96: hi pinned, lo constrained.
  const auto p96 = parse_ipv6_prefix("2001:db8::1:0:0/96");
  ASSERT_TRUE(p96.has_value());
  const auto [hi96, lo96] = p96->to_intervals();
  EXPECT_EQ(hi96.lo(), hi96.hi());
  EXPECT_EQ(lo96.hi() - lo96.lo(), 0xffffffffull);
  // /128: both pinned.
  const auto p128 = parse_ipv6_prefix("::1");
  ASSERT_TRUE(p128.has_value());
  EXPECT_EQ(p128->length, 128);
  const auto [hi128, lo128] = p128->to_intervals();
  EXPECT_EQ(hi128, Interval::point(0));
  EXPECT_EQ(lo128, Interval::point(1));
  // /0: everything.
  const auto p0 = parse_ipv6_prefix("::/0");
  ASSERT_TRUE(p0.has_value());
  const auto [hi0, lo0] = p0->to_intervals();
  EXPECT_EQ(hi0, Interval(0, UINT64_MAX));
  EXPECT_EQ(lo0, Interval(0, UINT64_MAX));
}

TEST(Ipv6, PrefixRejectsHostBitsAndBadLengths) {
  EXPECT_FALSE(parse_ipv6_prefix("2001:db8::1/32"));  // host bits set
  EXPECT_FALSE(parse_ipv6_prefix("2001:db8::/129"));
  EXPECT_FALSE(parse_ipv6_prefix("2001:db8::/"));
  EXPECT_FALSE(parse_ipv6_prefix("bogus/32"));
  EXPECT_EQ(parse_ipv6_prefix("2001:db8::/32")->to_string(),
            "2001:db8::/32");
}

TEST(Ipv6, SchemaEnforcesPairing) {
  EXPECT_NO_THROW(five_tuple_v6_schema());
  // kIpv6Hi without its lo half.
  EXPECT_THROW(
      Schema({{"a", Interval(0, UINT64_MAX), FieldKind::kIpv6Hi}}),
      std::invalid_argument);
  // lo half without hi.
  EXPECT_THROW(
      Schema({{"a", Interval(0, UINT64_MAX), FieldKind::kIpv6Lo}}),
      std::invalid_argument);
  // hi with a truncated domain.
  EXPECT_THROW(
      Schema({{"a", Interval(0, 100), FieldKind::kIpv6Hi},
              {"b", Interval(0, UINT64_MAX), FieldKind::kIpv6Lo}}),
      std::invalid_argument);
}

TEST(Ipv6, ParserHandlesPrefixSpecs) {
  const Schema schema = five_tuple_v6_schema();
  const Rule r = parse_rule(schema, default_decisions(),
                            "discard sip=2001:db8::/32 dport=25");
  EXPECT_EQ(r.conjunct(0),
            IntervalSet(Interval(0x20010db800000000ull,
                                 0x20010db8ffffffffull)));
  EXPECT_EQ(r.conjunct(1), IntervalSet(Interval(0, UINT64_MAX)));
  EXPECT_EQ(r.conjunct(5), IntervalSet(Interval::point(25)));
  // Setting the lo half directly is rejected.
  EXPECT_THROW(parse_rule(schema, default_decisions(), "accept sip.lo=5"),
               ParseError);
  EXPECT_THROW(
      parse_rule(schema, default_decisions(), "accept sip=2001:db8::1/32"),
      ParseError);
}

TEST(Ipv6, RuleFormatterEmitsCidr) {
  const Schema schema = five_tuple_v6_schema();
  const DecisionSet& ds = default_decisions();
  for (const char* text :
       {"discard sip=2001:db8::/32", "accept dip=::1/128 dport=443 proto=tcp",
        "accept sip=fe80::/10 dip=ff02::/16", "discard"}) {
    const Rule r = parse_rule(schema, ds, text);
    EXPECT_EQ(format_rule(schema, ds, r), text);
  }
}

TEST(Ipv6, EndToEndComparisonOverV6Policies) {
  const Schema schema = five_tuple_v6_schema();
  const DecisionSet& ds = default_decisions();
  const Policy a = parse_policy(schema, ds,
                                "accept dip=2001:db8::25 dport=25 proto=tcp\n"
                                "discard sip=2001:db8:bad::/48\n"
                                "accept\n");
  const Policy b = parse_policy(schema, ds,
                                "discard sip=2001:db8:bad::/48\n"
                                "accept dip=2001:db8::25 dport=25 proto=tcp\n"
                                "accept\n");
  const std::vector<Discrepancy> diffs = discrepancies(a, b);
  ASSERT_FALSE(diffs.empty());
  // The disagreement is exactly mail from the bad /48 to the server.
  for (const Discrepancy& d : diffs) {
    EXPECT_EQ(d.decisions[0], kAccept);
    EXPECT_EQ(d.decisions[1], kDiscard);
    EXPECT_TRUE(d.conjuncts[0].contains(0x20010db80bad0000ull));
    EXPECT_TRUE(d.conjuncts[5].contains(25));
  }
  // And the two firewalls agree everywhere else (probe a few corners).
  const auto bad_hi = parse_ipv6("2001:db8:bad::")->hi;
  const Packet bad_web = {bad_hi, 0, 1, 2, 40000, 443, 6};
  EXPECT_EQ(a.evaluate(bad_web), b.evaluate(bad_web));
  const Packet good_mail = {1, 2, parse_ipv6("2001:db8::25")->hi,
                            parse_ipv6("2001:db8::25")->lo, 40000, 25, 6};
  EXPECT_EQ(a.evaluate(good_mail), kAccept);
  EXPECT_EQ(b.evaluate(good_mail), kAccept);
}

}  // namespace
}  // namespace dfw
