// Schema unit tests: validation of field definitions, lookup, packet-space
// sizing, and the two stock schemas.

#include <gtest/gtest.h>

#include "fw/schema.hpp"

namespace dfw {
namespace {

TEST(Schema, BasicAccessors) {
  const Schema s({{"a", Interval(0, 7), FieldKind::kInteger},
                  {"b", Interval(0, 15), FieldKind::kInteger}});
  EXPECT_EQ(s.field_count(), 2u);
  EXPECT_EQ(s.field(0).name, "a");
  EXPECT_EQ(s.domain(1), Interval(0, 15));
  EXPECT_EQ(s.index_of("b"), 1u);
  EXPECT_FALSE(s.index_of("c").has_value());
  EXPECT_THROW(s.field(2), std::out_of_range);
}

TEST(Schema, RejectsEmptyFieldList) {
  EXPECT_THROW(Schema({}), std::invalid_argument);
}

TEST(Schema, RejectsDuplicateNames) {
  EXPECT_THROW(Schema({{"a", Interval(0, 7), FieldKind::kInteger},
                       {"a", Interval(0, 3), FieldKind::kInteger}}),
               std::invalid_argument);
}

TEST(Schema, RejectsNonZeroBasedDomains) {
  EXPECT_THROW(Schema({{"a", Interval(1, 7), FieldKind::kInteger}}),
               std::invalid_argument);
}

TEST(Schema, RejectsEmptyName) {
  EXPECT_THROW(Schema({{"", Interval(0, 7), FieldKind::kInteger}}),
               std::invalid_argument);
}

TEST(Schema, PacketSpaceSize) {
  const Schema s({{"a", Interval(0, 7), FieldKind::kInteger},
                  {"b", Interval(0, 3), FieldKind::kInteger}});
  EXPECT_EQ(s.packet_space_size(), 32u);
}

TEST(Schema, PacketSpaceSizeSaturates) {
  // Two 32-bit and one 16-bit field: 2^80 saturates.
  const Schema s({{"a", Interval(0, UINT32_MAX), FieldKind::kIpv4},
                  {"b", Interval(0, UINT32_MAX), FieldKind::kIpv4},
                  {"c", Interval(0, 65535), FieldKind::kInteger}});
  EXPECT_EQ(s.packet_space_size(), UINT64_MAX);
}

TEST(Schema, Equality) {
  const Schema a({{"x", Interval(0, 7), FieldKind::kInteger}});
  const Schema b({{"x", Interval(0, 7), FieldKind::kInteger}});
  const Schema c({{"x", Interval(0, 3), FieldKind::kInteger}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Schema, ExampleSchemaMatchesPaper) {
  const Schema s = example_schema();
  EXPECT_EQ(s.field_count(), 5u);
  EXPECT_EQ(s.field(0).name, "I");
  EXPECT_EQ(s.domain(0), Interval(0, 1));
  EXPECT_EQ(s.domain(1), Interval(0, UINT32_MAX));
  EXPECT_EQ(s.domain(3), Interval(0, 65535));
  EXPECT_EQ(s.domain(4), Interval(0, 1));  // {0 = TCP, 1 = UDP}
}

TEST(Schema, FiveTupleSchemaMatchesSection71) {
  const Schema s = five_tuple_schema();
  EXPECT_EQ(s.field_count(), 5u);
  EXPECT_EQ(s.field(0).kind, FieldKind::kIpv4);
  EXPECT_EQ(s.field(4).kind, FieldKind::kProtocol);
  EXPECT_EQ(s.domain(4), Interval(0, 255));
}

}  // namespace
}  // namespace dfw
