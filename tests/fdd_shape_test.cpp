// Shaping algorithm tests (Figs. 10-11): semi-isomorphism is established,
// semantics of *both* diagrams are untouched, and the N-way extension makes
// all diagrams pairwise semi-isomorphic.

#include <gtest/gtest.h>

#include "fdd/construct.hpp"
#include "fdd/shape.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

TEST(FddShape, MakesPairSemiIsomorphic) {
  std::mt19937_64 rng(42);
  const Policy pa = test::random_policy(tiny3(), 5, rng);
  const Policy pb = test::random_policy(tiny3(), 5, rng);
  Fdd fa = build_fdd(pa);
  Fdd fb = build_fdd(pb);
  shape_pair(fa, fb);
  EXPECT_TRUE(semi_isomorphic(fa, fb));
  fa.validate();
  fb.validate();
}

TEST(FddShape, PreservesSemanticsOfBothDiagrams) {
  std::mt19937_64 rng(43);
  for (int trial = 0; trial < 25; ++trial) {
    const Policy pa = test::random_policy(tiny3(), 5, rng);
    const Policy pb = test::random_policy(tiny3(), 5, rng);
    Fdd fa = build_fdd(pa);
    Fdd fb = build_fdd(pb);
    shape_pair(fa, fb);
    EXPECT_TRUE(test::fdd_matches_policy(fa, pa));
    EXPECT_TRUE(test::fdd_matches_policy(fb, pb));
  }
}

TEST(FddShape, AlreadyIsomorphicPairIsUntouched) {
  std::mt19937_64 rng(44);
  const Policy p = test::random_policy(tiny2(), 4, rng);
  Fdd fa = build_fdd(p);
  Fdd fb = build_fdd(p);
  shape_pair(fa, fb);
  const Fdd snapshot_a = fa.clone();
  const Fdd snapshot_b = fb.clone();
  shape_pair(fa, fb);  // second run must be a no-op
  EXPECT_TRUE(structurally_equal(snapshot_a, fa));
  EXPECT_TRUE(structurally_equal(snapshot_b, fb));
}

TEST(FddShape, HandlesConstantVersusDeepDiagram) {
  std::mt19937_64 rng(45);
  const Policy deep = test::random_policy(tiny3(), 6, rng);
  Fdd fa = Fdd::constant(tiny3(), kAccept);
  Fdd fb = build_fdd(deep);
  shape_pair(fa, fb);
  EXPECT_TRUE(semi_isomorphic(fa, fb));
  for (const Packet& p : test::all_packets(tiny3())) {
    EXPECT_EQ(fa.evaluate(p), kAccept);
    EXPECT_EQ(fb.evaluate(p), deep.evaluate(p));
  }
}

TEST(FddShape, RejectsSchemaMismatch) {
  Fdd fa = Fdd::constant(tiny2(), kAccept);
  Fdd fb = Fdd::constant(tiny3(), kAccept);
  EXPECT_THROW(shape_pair(fa, fb), std::invalid_argument);
}

TEST(FddShape, ShapeAllMakesAllPairsSemiIsomorphic) {
  std::mt19937_64 rng(46);
  std::vector<Fdd> fdds;
  std::vector<Policy> policies;
  for (int i = 0; i < 4; ++i) {
    policies.push_back(test::random_policy(tiny3(), 4, rng));
    fdds.push_back(build_fdd(policies.back()));
  }
  shape_all(fdds);
  for (std::size_t i = 0; i < fdds.size(); ++i) {
    for (std::size_t j = i + 1; j < fdds.size(); ++j) {
      EXPECT_TRUE(semi_isomorphic(fdds[i], fdds[j]))
          << "pair " << i << "," << j;
    }
  }
  for (std::size_t i = 0; i < fdds.size(); ++i) {
    EXPECT_TRUE(test::fdd_matches_policy(fdds[i], policies[i]));
  }
}

TEST(FddShape, ShapeAllSingleDiagramJustSimplifies) {
  std::vector<Fdd> fdds;
  fdds.push_back(Fdd::constant(tiny2(), kDiscard));
  shape_all(fdds);
  EXPECT_TRUE(fdds[0].is_simple());
}

TEST(FddShape, ShapeAllEmptyRejected) {
  std::vector<Fdd> none;
  EXPECT_THROW(shape_all(none), std::invalid_argument);
}

// The paper's Figs. 8-9 scenario: same field, different cut points. After
// shaping, both nodes carry the union of the cut points.
TEST(FddShape, EdgeCutPointsAreUnified) {
  const Schema schema({{"x", Interval(0, 9), FieldKind::kInteger}});
  auto build = [&](Value split, Decision lo_d, Decision hi_d) {
    auto root = FddNode::make_internal(0);
    root->edges.emplace_back(IntervalSet(Interval(0, split)),
                             FddNode::make_terminal(lo_d));
    root->edges.emplace_back(IntervalSet(Interval(split + 1, 9)),
                             FddNode::make_terminal(hi_d));
    return Fdd(schema, std::move(root));
  };
  Fdd fa = build(4, kAccept, kDiscard);
  Fdd fb = build(6, kAccept, kDiscard);
  shape_pair(fa, fb);
  EXPECT_TRUE(semi_isomorphic(fa, fb));
  ASSERT_EQ(fa.root().edges.size(), 3u);  // cuts at 4 and 6
  EXPECT_EQ(fa.root().edges[0].label, IntervalSet(Interval(0, 4)));
  EXPECT_EQ(fa.root().edges[1].label, IntervalSet(Interval(5, 6)));
  EXPECT_EQ(fa.root().edges[2].label, IntervalSet(Interval(7, 9)));
}

TEST(FddShapeSimple, ProducesSimpleSemiIsomorphicFdds) {
  std::mt19937_64 rng(47);
  const Policy pa = test::random_policy(tiny3(), 5, rng);
  const Policy pb = test::random_policy(tiny3(), 5, rng);
  Fdd fa = build_fdd(pa);
  Fdd fb = build_fdd(pb);
  shape_pair_simple(fa, fb);
  EXPECT_TRUE(fa.is_simple());
  EXPECT_TRUE(fb.is_simple());
  EXPECT_TRUE(semi_isomorphic(fa, fb));
  EXPECT_TRUE(test::fdd_matches_policy(fa, pa));
  EXPECT_TRUE(test::fdd_matches_policy(fb, pb));
}

TEST(FddShapeSimple, AgreesWithProductionShaping) {
  // Both shapings must expose the same disagreement set; only the edge
  // granularity differs. Verify via exhaustive packet semantics.
  std::mt19937_64 rng(48);
  for (int trial = 0; trial < 15; ++trial) {
    const Policy pa = test::random_policy(tiny3(), 5, rng);
    const Policy pb = test::random_policy(tiny3(), 5, rng);
    Fdd sa = build_fdd(pa);
    Fdd sb = build_fdd(pb);
    shape_pair_simple(sa, sb);
    Fdd ma = build_fdd(pa);
    Fdd mb = build_fdd(pb);
    shape_pair(ma, mb);
    for (const Packet& pkt : test::all_packets(tiny3())) {
      EXPECT_EQ(sa.evaluate(pkt), ma.evaluate(pkt));
      EXPECT_EQ(sb.evaluate(pkt), mb.evaluate(pkt));
      EXPECT_EQ(sa.evaluate(pkt) != sb.evaluate(pkt),
                ma.evaluate(pkt) != mb.evaluate(pkt));
    }
  }
}

TEST(FddShapeSimple, NeverProducesFewerEdgesThanProduction) {
  std::mt19937_64 rng(49);
  const Policy pa = test::random_policy(tiny3(), 6, rng);
  const Policy pb = test::random_policy(tiny3(), 6, rng);
  Fdd sa = build_fdd(pa);
  Fdd sb = build_fdd(pb);
  shape_pair_simple(sa, sb);
  Fdd ma = build_fdd(pa);
  Fdd mb = build_fdd(pb);
  shape_pair(ma, mb);
  EXPECT_GE(sa.node_count(), ma.node_count());
  EXPECT_GE(sb.node_count(), mb.node_count());
}

}  // namespace
}  // namespace dfw
