// Firewall query tests: answers must partition exactly the queried packet
// set, respect decision filters, and match brute-force evaluation.

#include <gtest/gtest.h>

#include "fw/parser.hpp"
#include "net/ipv4.hpp"
#include "query/query.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::all_packets;
using test::tiny3;

bool result_contains(const QueryResult& r, const Packet& pkt) {
  for (std::size_t f = 0; f < pkt.size(); ++f) {
    if (!r.conjuncts[f].contains(pkt[f])) {
      return false;
    }
  }
  return true;
}

TEST(Query, UnconstrainedQueryDescribesWholePolicy) {
  std::mt19937_64 rng(81);
  const Policy p = test::random_policy(tiny3(), 5, rng);
  const std::vector<QueryResult> results =
      run_query(p, Query::any(p.schema()));
  for (const Packet& pkt : all_packets(tiny3())) {
    int hits = 0;
    for (const QueryResult& r : results) {
      if (result_contains(r, pkt)) {
        ++hits;
        EXPECT_EQ(r.decision, p.evaluate(pkt));
      }
    }
    EXPECT_EQ(hits, 1) << "answers must partition the packet space";
  }
}

TEST(Query, FieldConstraintRestrictsAnswers) {
  std::mt19937_64 rng(82);
  const Policy p = test::random_policy(tiny3(), 5, rng);
  Query q = Query::any(p.schema());
  q.constraints[0] = IntervalSet(Interval(2, 3));
  const std::vector<QueryResult> results = run_query(p, q);
  for (const Packet& pkt : all_packets(tiny3())) {
    const bool in_scope = pkt[0] >= 2 && pkt[0] <= 3;
    int hits = 0;
    for (const QueryResult& r : results) {
      if (result_contains(r, pkt)) {
        ++hits;
        EXPECT_EQ(r.decision, p.evaluate(pkt));
      }
    }
    EXPECT_EQ(hits, in_scope ? 1 : 0);
  }
}

TEST(Query, DecisionFilterSelectsExactlyThatTraffic) {
  std::mt19937_64 rng(83);
  const Policy p = test::random_policy(tiny3(), 5, rng);
  Query q = Query::any(p.schema());
  q.decision = kDiscard;
  const std::vector<QueryResult> results = run_query(p, q);
  for (const Packet& pkt : all_packets(tiny3())) {
    bool covered = false;
    for (const QueryResult& r : results) {
      covered = covered || result_contains(r, pkt);
    }
    EXPECT_EQ(covered, p.evaluate(pkt) == kDiscard);
  }
}

TEST(Query, RealisticFiveTupleQuestion) {
  // "Which packets may reach the mail server's port 25?"
  const Schema schema = five_tuple_schema();
  const DecisionSet& ds = default_decisions();
  const Policy p = parse_policy(schema, ds,
                                "discard sip=224.168.0.0/16\n"
                                "accept dip=192.168.0.1 dport=25 proto=tcp\n"
                                "discard\n");
  Query q = Query::any(schema);
  q.constraints[1] = IntervalSet(Interval::point(*parse_ipv4("192.168.0.1")));
  q.constraints[3] = IntervalSet(Interval::point(25));
  q.decision = kAccept;
  const std::vector<QueryResult> results = run_query(p, q);
  ASSERT_EQ(results.size(), 1u);
  // Accepted: TCP only, and never from the malicious /16.
  EXPECT_EQ(results[0].conjuncts[4], IntervalSet(Interval::point(6)));
  EXPECT_FALSE(results[0].conjuncts[0].contains(*parse_ipv4("224.168.0.1")));
  const std::string report = format_query_results(schema, ds, results);
  EXPECT_NE(report.find("-> accept"), std::string::npos);
  EXPECT_NE(report.find("dport in 25"), std::string::npos);
}

TEST(Query, EmptyAnswerForContradiction) {
  const Schema schema = tiny3();
  const Policy p(schema, {Rule::catch_all(schema, kAccept)});
  Query q = Query::any(schema);
  q.decision = kDiscard;  // nothing is discarded
  EXPECT_TRUE(run_query(p, q).empty());
  EXPECT_NE(format_query_results(schema, default_decisions(), {})
                .find("no packets"),
            std::string::npos);
}

TEST(Query, ValidatesArityAndDomains) {
  const Schema schema = tiny3();
  const Policy p(schema, {Rule::catch_all(schema, kAccept)});
  Query bad_arity;
  bad_arity.constraints.resize(2);
  EXPECT_THROW(run_query(p, bad_arity), std::invalid_argument);
  Query bad_domain = Query::any(schema);
  bad_domain.constraints[0] = IntervalSet(Interval(0, 99));
  EXPECT_THROW(run_query(p, bad_domain), std::invalid_argument);
}

}  // namespace
}  // namespace dfw
