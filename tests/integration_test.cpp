// Cross-module integration tests: realistic five-tuple policies flowing
// through parse -> construct -> shape -> compare -> resolve -> generate ->
// redundancy-removal, plus the change-impact wrapper, at sizes where no
// brute force is possible — correctness is asserted through packet probes
// and pipeline cross-checks.

#include <gtest/gtest.h>

#include "diverse/workflow.hpp"
#include "fdd/construct.hpp"
#include "fdd/dot.hpp"
#include "fdd/stats.hpp"
#include "fw/format.hpp"
#include "fw/parser.hpp"
#include "gen/generate.hpp"
#include "gen/redundancy.hpp"
#include "impact/impact.hpp"
#include "net/ipv4.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

const DecisionSet& kDecisions = default_decisions();

// A mid-size corporate-style policy exercising every atom kind.
Policy corporate() {
  return parse_policy(five_tuple_schema(), kDecisions,
                      "# DMZ web servers\n"
                      "accept dip=10.1.0.0/24 dport=80,443 proto=tcp\n"
                      "# mail\n"
                      "accept dip=10.1.1.25/32 dport=25 proto=tcp\n"
                      "# dns\n"
                      "accept dip=10.1.1.53/32 dport=53\n"
                      "# management from the ops subnet only\n"
                      "accept sip=10.9.0.0/16 dport=22 proto=tcp\n"
                      "discard dport=22\n"
                      "# known-bad source\n"
                      "discard sip=203.0.113.0/24\n"
                      "# internal chatter\n"
                      "accept sip=10.0.0.0/8 dip=10.0.0.0/8\n"
                      "discard\n");
}

TEST(Integration, RegenerationRoundTripIsEquivalent) {
  const Policy p = corporate();
  const Fdd fdd = build_fdd(p);
  fdd.validate();
  const Policy regenerated = generate_policy(fdd);
  EXPECT_TRUE(equivalent(p, regenerated));
  // Rendering the regenerated policy re-parses to the same semantics.
  const Policy reparsed = parse_policy(
      p.schema(), kDecisions, format_policy(regenerated, kDecisions));
  EXPECT_TRUE(equivalent(p, reparsed));
}

TEST(Integration, SelfComparisonOfLargeSynthetic) {
  SynthConfig config;
  config.num_rules = 200;
  Rng rng(404);
  const Policy p = synth_policy(config, rng);
  EXPECT_TRUE(equivalent(p, p));
}

TEST(Integration, PerturbedPolicyDiscrepanciesAreConsistent) {
  SynthConfig config;
  config.num_rules = 150;
  Rng rng(405);
  const Policy original = synth_policy(config, rng);
  const Policy perturbed = perturb_policy(original, 20.0, rng);
  const std::vector<Discrepancy> diffs = discrepancies(original, perturbed);
  // Probe three packets per class (min corner, max corner, mixed).
  for (const Discrepancy& d : diffs) {
    Packet lo_corner;
    Packet hi_corner;
    Packet mixed;
    for (std::size_t f = 0; f < d.conjuncts.size(); ++f) {
      lo_corner.push_back(d.conjuncts[f].min());
      hi_corner.push_back(d.conjuncts[f].max());
      mixed.push_back(f % 2 == 0 ? d.conjuncts[f].min()
                                 : d.conjuncts[f].max());
    }
    for (const Packet& pkt : {lo_corner, hi_corner, mixed}) {
      EXPECT_EQ(original.evaluate(pkt), d.decisions[0]);
      EXPECT_EQ(perturbed.evaluate(pkt), d.decisions[1]);
    }
  }
}

TEST(Integration, ChangeImpactOfRealisticEdit) {
  Policy before = corporate();
  Policy after = before;
  // The classic head-insertion mistake: a broad block rule on top.
  after.insert(0, parse_rule(after.schema(), kDecisions,
                             "discard sip=10.0.0.0/8 dport=22"));
  const std::vector<Impact> impacts = change_impact(before, after);
  ASSERT_FALSE(impacts.empty());
  // The ops subnet's ssh is collateral damage: 10.9.x.x was accepted.
  const Packet ops_ssh = {*parse_ipv4("10.9.1.1"), *parse_ipv4("10.1.0.5"),
                          40000, 22, 6};
  EXPECT_EQ(before.evaluate(ops_ssh), kAccept);
  EXPECT_EQ(after.evaluate(ops_ssh), kDiscard);
  bool covered = false;
  for (const Impact& impact : impacts) {
    bool inside = true;
    for (std::size_t f = 0; f < ops_ssh.size(); ++f) {
      inside = inside && impact.discrepancy.conjuncts[f].contains(ops_ssh[f]);
    }
    if (inside) {
      covered = true;
      EXPECT_EQ(impact.kind, ImpactKind::kNowDiscarded);
    }
  }
  EXPECT_TRUE(covered);
}

TEST(Integration, ThreeTeamSessionEndToEnd) {
  SynthConfig config;
  config.num_rules = 40;
  Rng rng(406);
  const Policy base = synth_policy(config, rng);
  DiverseDesign session((DecisionSet()));
  session.submit("alpha", base);
  session.submit("bravo", perturb_policy(base, 15.0, rng));
  session.submit("charlie", perturb_policy(base, 15.0, rng));
  const std::vector<Discrepancy> diffs = session.compare();
  ResolutionPlan plan;
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    plan.push_back(adopt(i, diffs[i], 0));  // alpha arbitrates
  }
  const Policy final_policy =
      session.resolve(plan, ResolutionMethod::kCorrectedFdd, 2);
  EXPECT_TRUE(equivalent(final_policy, base));
}

TEST(Integration, RedundancyRemovalOnGeneratedOutput) {
  const Policy p = corporate();
  const Policy regenerated = generate_policy(build_fdd(p));
  const Policy trimmed = remove_redundant(regenerated);
  EXPECT_LE(trimmed.size(), regenerated.size());
  EXPECT_TRUE(equivalent(p, trimmed));
}

TEST(Integration, StatsAndDotExport) {
  const Fdd fdd = build_fdd(corporate());
  const FddStats stats = compute_stats(fdd);
  EXPECT_GT(stats.nodes, 0u);
  EXPECT_EQ(stats.paths, fdd.path_count());
  EXPECT_LE(stats.depth, corporate().schema().field_count() + 1);
  EXPECT_NE(to_string(stats).find("paths="), std::string::npos);
  const std::string dot = to_dot(fdd, kDecisions);
  EXPECT_NE(dot.find("digraph fdd {"), std::string::npos);
  EXPECT_NE(dot.find("accept"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Integration, PaperScaleComparisonCompletesQuickly) {
  // A smoke-level version of Fig. 13's headline claim: comparing two
  // independently generated mid-size firewalls terminates and reports
  // sound discrepancies.
  SynthConfig config;
  config.num_rules = 100;
  Rng rng(407);
  const Policy a = synth_policy(config, rng);
  const Policy b = synth_policy(config, rng);
  const std::vector<Discrepancy> diffs = discrepancies(a, b);
  for (const Discrepancy& d : diffs) {
    Packet probe;
    for (const IntervalSet& s : d.conjuncts) {
      probe.push_back(s.min());
    }
    EXPECT_EQ(a.evaluate(probe), d.decisions[0]);
    EXPECT_EQ(b.evaluate(probe), d.decisions[1]);
  }
}

}  // namespace
}  // namespace dfw
