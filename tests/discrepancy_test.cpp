// Human-readable discrepancy report tests.

#include <gtest/gtest.h>

#include "diverse/discrepancy.hpp"
#include "fw/parser.hpp"
#include "net/ipv4.hpp"

namespace dfw {
namespace {

const Schema kSchema = five_tuple_schema();
const DecisionSet& kDecisions = default_decisions();

Discrepancy sample_discrepancy() {
  Discrepancy d;
  d.conjuncts = {
      IntervalSet(Interval(*parse_ipv4("224.168.0.0"),
                           *parse_ipv4("224.168.255.255"))),
      IntervalSet(kSchema.domain(1)),
      IntervalSet(kSchema.domain(2)),
      IntervalSet(Interval::point(25)),
      IntervalSet(Interval::point(6)),
  };
  d.decisions = {kAccept, kDiscard};
  return d;
}

TEST(DiscrepancyReport, RendersPredicateInFieldSyntax) {
  const std::string line =
      format_discrepancy(kSchema, kDecisions, sample_discrepancy());
  EXPECT_NE(line.find("sip in 224.168.0.0/16"), std::string::npos);
  EXPECT_NE(line.find("dport in 25"), std::string::npos);
  EXPECT_NE(line.find("proto in tcp"), std::string::npos);
  // Wildcarded fields are omitted entirely.
  EXPECT_EQ(line.find("dip"), std::string::npos);
}

TEST(DiscrepancyReport, DefaultTeamNames) {
  const std::string line =
      format_discrepancy(kSchema, kDecisions, sample_discrepancy());
  EXPECT_NE(line.find("team1=accept"), std::string::npos);
  EXPECT_NE(line.find("team2=discard"), std::string::npos);
}

TEST(DiscrepancyReport, CustomTeamNames) {
  const std::string line = format_discrepancy(
      kSchema, kDecisions, sample_discrepancy(), {"before", "after"});
  EXPECT_NE(line.find("before=accept"), std::string::npos);
  EXPECT_NE(line.find("after=discard"), std::string::npos);
}

TEST(DiscrepancyReport, AllWildcardPredicateSaysAllPackets) {
  Discrepancy d;
  for (std::size_t i = 0; i < kSchema.field_count(); ++i) {
    d.conjuncts.emplace_back(kSchema.domain(i));
  }
  d.decisions = {kAccept, kDiscard};
  const std::string line = format_discrepancy(kSchema, kDecisions, d);
  EXPECT_NE(line.find("all packets"), std::string::npos);
}

TEST(DiscrepancyReport, EmptyListReportsEquivalence) {
  const std::string report =
      format_discrepancy_report(kSchema, kDecisions, {});
  EXPECT_NE(report.find("equivalent"), std::string::npos);
}

TEST(DiscrepancyReport, FullReportNumbersAndCounts) {
  const std::vector<Discrepancy> diffs = {sample_discrepancy(),
                                          sample_discrepancy()};
  const std::string report =
      format_discrepancy_report(kSchema, kDecisions, diffs);
  EXPECT_NE(report.find("functional discrepancies (2):"), std::string::npos);
  EXPECT_NE(report.find("d1: "), std::string::npos);
  EXPECT_NE(report.find("d2: "), std::string::npos);
  EXPECT_NE(report.find("total packets affected"), std::string::npos);
}

}  // namespace
}  // namespace dfw
