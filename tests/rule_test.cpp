// Rule unit tests: validation against schemas, matching semantics, the
// simple-rule predicate, and catch-all construction.

#include <gtest/gtest.h>

#include "fw/rule.hpp"

namespace dfw {
namespace {

Schema two_fields() {
  return Schema({{"x", Interval(0, 15), FieldKind::kInteger},
                 {"y", Interval(0, 7), FieldKind::kInteger}});
}

TEST(Rule, ConstructionAndAccessors) {
  const Schema s = two_fields();
  const Rule r(s, {IntervalSet(Interval(1, 5)), IntervalSet(Interval(0, 7))},
               kAccept);
  EXPECT_EQ(r.decision(), kAccept);
  EXPECT_EQ(r.conjunct(0), IntervalSet(Interval(1, 5)));
}

TEST(Rule, RejectsArityMismatch) {
  const Schema s = two_fields();
  EXPECT_THROW(Rule(s, {IntervalSet(Interval(0, 5))}, kAccept),
               std::invalid_argument);
}

TEST(Rule, RejectsEmptyConjunct) {
  const Schema s = two_fields();
  EXPECT_THROW(
      Rule(s, {IntervalSet(), IntervalSet(Interval(0, 7))}, kAccept),
      std::invalid_argument);
}

TEST(Rule, RejectsDomainEscape) {
  const Schema s = two_fields();
  EXPECT_THROW(Rule(s, {IntervalSet(Interval(0, 16)),
                        IntervalSet(Interval(0, 7))},
                    kAccept),
               std::invalid_argument);
}

TEST(Rule, MatchesConjunction) {
  const Schema s = two_fields();
  const Rule r(s, {IntervalSet(Interval(1, 5)), IntervalSet(Interval(2, 4))},
               kDiscard);
  EXPECT_TRUE(r.matches({3, 3}));
  EXPECT_TRUE(r.matches({1, 2}));
  EXPECT_FALSE(r.matches({0, 3}));
  EXPECT_FALSE(r.matches({3, 5}));
  EXPECT_THROW(r.matches({3}), std::invalid_argument);
}

TEST(Rule, MatchesMultiRunConjunct) {
  const Schema s = two_fields();
  const Rule r(
      s,
      {IntervalSet{Interval(0, 1), Interval(10, 15)},
       IntervalSet(Interval(0, 7))},
      kAccept);
  EXPECT_TRUE(r.matches({0, 0}));
  EXPECT_TRUE(r.matches({12, 7}));
  EXPECT_FALSE(r.matches({5, 0}));
}

TEST(Rule, SimplePredicate) {
  const Schema s = two_fields();
  const Rule simple(
      s, {IntervalSet(Interval(1, 5)), IntervalSet(Interval(0, 7))},
      kAccept);
  EXPECT_TRUE(simple.is_simple());
  const Rule not_simple(
      s,
      {IntervalSet{Interval(0, 1), Interval(4, 5)},
       IntervalSet(Interval(0, 7))},
      kAccept);
  EXPECT_FALSE(not_simple.is_simple());
}

TEST(Rule, CatchAllCoversDomain) {
  const Schema s = two_fields();
  const Rule r = Rule::catch_all(s, kDiscard);
  EXPECT_TRUE(r.is_simple());
  EXPECT_TRUE(r.matches({0, 0}));
  EXPECT_TRUE(r.matches({15, 7}));
  EXPECT_EQ(r.decision(), kDiscard);
}

TEST(Rule, SetDecision) {
  const Schema s = two_fields();
  Rule r = Rule::catch_all(s, kAccept);
  r.set_decision(kDiscard);
  EXPECT_EQ(r.decision(), kDiscard);
}

}  // namespace
}  // namespace dfw
