// Resolution-phase tests: both methods must realise the agreed mapping
// exactly, for arbitrary plans, any base team, and N >= 2 teams.

#include <gtest/gtest.h>

#include "diverse/resolve.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::all_packets;
using test::tiny3;

// Applies a plan's semantics by brute force: for packets in discrepancy i
// the agreed decision; elsewhere the (unanimous) team decision.
Decision expected_decision(const std::vector<Policy>& teams,
                           const std::vector<Discrepancy>& diffs,
                           const ResolutionPlan& plan, const Packet& pkt) {
  for (const Resolution& r : plan) {
    const Discrepancy& d = diffs[r.discrepancy_index];
    bool inside = true;
    for (std::size_t f = 0; f < pkt.size(); ++f) {
      inside = inside && d.conjuncts[f].contains(pkt[f]);
    }
    if (inside) {
      return r.agreed;
    }
  }
  return teams[0].evaluate(pkt);
}

class ResolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(ResolveProperty, BothMethodsRealiseTheAgreedMapping) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<Policy> teams;
  for (int i = 0; i < 2; ++i) {
    teams.push_back(test::random_policy(tiny3(), 5, rng));
  }
  const std::vector<Discrepancy> diffs = discrepancies_many(teams);
  // Random plan: agree with a random team per discrepancy.
  ResolutionPlan plan;
  std::uniform_int_distribution<std::size_t> team_pick(0, teams.size() - 1);
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    plan.push_back(adopt(i, diffs[i], team_pick(rng)));
  }
  for (std::size_t base = 0; base < teams.size(); ++base) {
    const Policy via_fdd = resolve_via_fdd(teams, plan, base);
    const Policy via_corr = resolve_via_corrections(teams, plan, base);
    for (const Packet& pkt : all_packets(tiny3())) {
      const Decision want = expected_decision(teams, diffs, plan, pkt);
      EXPECT_EQ(via_fdd.evaluate(pkt), want) << "method 1, base " << base;
      EXPECT_EQ(via_corr.evaluate(pkt), want) << "method 2, base " << base;
    }
  }
}

TEST_P(ResolveProperty, ThreeTeamsResolveConsistently) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 500);
  std::vector<Policy> teams;
  for (int i = 0; i < 3; ++i) {
    teams.push_back(test::random_policy(tiny3(), 4, rng));
  }
  const std::vector<Discrepancy> diffs = discrepancies_many(teams);
  ResolutionPlan plan;
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    plan.push_back(adopt(i, diffs[i], i % teams.size()));
  }
  const Policy m1 = resolve_via_fdd(teams, plan, 1);
  const Policy m2 = resolve_via_corrections(teams, plan, 2);
  for (const Packet& pkt : all_packets(tiny3())) {
    EXPECT_EQ(m1.evaluate(pkt),
              expected_decision(teams, diffs, plan, pkt));
    EXPECT_EQ(m2.evaluate(pkt), m1.evaluate(pkt));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResolveProperty, ::testing::Range(0, 10));

TEST(Resolve, AdoptValidatesTeamIndex) {
  Discrepancy d;
  d.decisions = {kAccept, kDiscard};
  EXPECT_EQ(adopt(0, d, 1).agreed, kDiscard);
  EXPECT_THROW(adopt(0, d, 2), std::invalid_argument);
}

TEST(Resolve, PlanValidationCatchesGaps) {
  std::mt19937_64 rng(9);
  std::vector<Policy> teams = {test::random_policy(tiny3(), 5, rng),
                               test::random_policy(tiny3(), 5, rng)};
  const std::vector<Discrepancy> diffs = discrepancies_many(teams);
  if (diffs.empty()) {
    GTEST_SKIP() << "seed produced equivalent policies";
  }
  // Missing resolutions.
  EXPECT_THROW(resolve_via_fdd(teams, {}, 0), std::invalid_argument);
  // Duplicate resolution.
  ResolutionPlan dup;
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    dup.push_back({i, kAccept});
  }
  dup.push_back({0, kDiscard});
  EXPECT_THROW(resolve_via_fdd(teams, dup, 0), std::invalid_argument);
  // Out-of-range index.
  ResolutionPlan bad;
  bad.push_back({diffs.size(), kAccept});
  EXPECT_THROW(resolve_via_corrections(teams, bad, 0),
               std::invalid_argument);
}

TEST(Resolve, MajorityVotePlan) {
  Discrepancy two_one;
  two_one.decisions = {kAccept, kDiscard, kAccept};
  Discrepancy all_differ;
  all_differ.decisions = {kAccept, kDiscard, 2};
  const ResolutionPlan plan =
      plan_by_majority({two_one, all_differ}, /*arbiter_team=*/1);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].agreed, kAccept);   // 2:1 majority beats the arbiter
  EXPECT_EQ(plan[1].agreed, kDiscard);  // three-way tie: arbiter decides
  EXPECT_THROW(plan_by_majority({two_one}, 5), std::invalid_argument);
}

TEST(Resolve, MajorityVoteEndToEnd) {
  // Three teams, two agreeing: the majority plan makes the final firewall
  // equivalent to the two-team consensus wherever they agree.
  std::mt19937_64 rng(12);
  const Policy consensus = test::random_policy(tiny3(), 5, rng);
  const Policy outlier = test::random_policy(tiny3(), 5, rng);
  const std::vector<Policy> teams = {consensus, outlier, consensus};
  const std::vector<Discrepancy> diffs = discrepancies_many(teams);
  const Policy final_policy =
      resolve_via_fdd(teams, plan_by_majority(diffs, 1), 1);
  for (const Packet& pkt : all_packets(tiny3())) {
    EXPECT_EQ(final_policy.evaluate(pkt), consensus.evaluate(pkt));
  }
}

TEST(Resolve, RejectsSingleTeam) {
  std::mt19937_64 rng(10);
  std::vector<Policy> one = {test::random_policy(tiny3(), 4, rng)};
  EXPECT_THROW(resolve_via_fdd(one, {}, 0), std::invalid_argument);
}

TEST(Resolve, RejectsUnknownBaseTeam) {
  std::mt19937_64 rng(11);
  std::vector<Policy> teams = {test::random_policy(tiny3(), 4, rng),
                               test::random_policy(tiny3(), 4, rng)};
  EXPECT_THROW(resolve_via_fdd(teams, {}, 5), std::invalid_argument);
  EXPECT_THROW(resolve_via_corrections(teams, {}, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace dfw
