// DecisionSet unit tests: built-ins, user-defined decisions (the paper's
// accept/discard "with logging" variants), idempotent registration.

#include <gtest/gtest.h>

#include "fw/decision.hpp"

namespace dfw {
namespace {

TEST(Decision, BuiltinsArePresent) {
  const DecisionSet ds;
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.name(kAccept), "accept");
  EXPECT_EQ(ds.name(kDiscard), "discard");
  EXPECT_EQ(ds.find("accept"), kAccept);
  EXPECT_EQ(ds.find("discard"), kDiscard);
}

TEST(Decision, AddUserDefinedDecisions) {
  DecisionSet ds;
  const Decision accept_log = ds.add("accept_log");
  const Decision discard_log = ds.add("discard_log");
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_NE(accept_log, discard_log);
  EXPECT_EQ(ds.name(accept_log), "accept_log");
  EXPECT_EQ(ds.find("discard_log"), discard_log);
}

TEST(Decision, AddIsIdempotent) {
  DecisionSet ds;
  const Decision first = ds.add("accept_log");
  const Decision second = ds.add("accept_log");
  EXPECT_EQ(first, second);
  EXPECT_EQ(ds.size(), 3u);
}

TEST(Decision, AddExistingBuiltinReturnsBuiltin) {
  DecisionSet ds;
  EXPECT_EQ(ds.add("accept"), kAccept);
  EXPECT_EQ(ds.size(), 2u);
}

TEST(Decision, UnknownLookups) {
  const DecisionSet ds;
  EXPECT_FALSE(ds.find("reject").has_value());
  EXPECT_THROW(ds.name(99), std::out_of_range);
}

TEST(Decision, DefaultDecisionsSingleton) {
  const DecisionSet& ds = default_decisions();
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(&default_decisions(), &ds);
}

}  // namespace
}  // namespace dfw
