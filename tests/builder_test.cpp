// FddBuilder tests: guided construction, automatic remainder regions,
// invariant enforcement at the API boundary, and integration with rule
// generation (the Section 7.2 design-in-FDD workflow).

#include <gtest/gtest.h>

#include "fdd/builder.hpp"
#include "fdd/compare.hpp"
#include "fw/parser.hpp"
#include "gen/generate.hpp"
#include "net/ipv4.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

TEST(Builder, SimpleTwoRegionDesign) {
  FddBuilder b(tiny2());
  const auto children =
      b.split(b.root(), 0, {IntervalSet(Interval(0, 3))});
  ASSERT_EQ(children.size(), 2u);  // explicit region + remainder
  b.decide(children[0], kAccept);
  b.decide(children[1], kDiscard);
  const Fdd fdd = b.finish();
  EXPECT_EQ(fdd.evaluate({2, 5}), kAccept);
  EXPECT_EQ(fdd.evaluate({5, 5}), kDiscard);
}

TEST(Builder, ExhaustivePartitionAddsNoRemainder) {
  FddBuilder b(tiny2());
  const auto children = b.split(
      b.root(), 0,
      {IntervalSet(Interval(0, 3)), IntervalSet(Interval(4, 7))});
  EXPECT_EQ(children.size(), 2u);
  b.decide(children[0], kAccept);
  b.decide(children[1], kDiscard);
  EXPECT_NO_THROW(b.finish());
}

TEST(Builder, NestedSplitsFollowFieldOrder) {
  FddBuilder b(tiny3());
  const auto on_x = b.split(b.root(), 0, {IntervalSet(Interval(0, 2))});
  const auto on_z = b.split(on_x[0], 2, {IntervalSet(Interval(0, 1))});
  b.decide(on_z[0], kDiscard);
  b.decide(on_z[1], kAccept);
  b.decide(on_x[1], kAccept);
  const Fdd fdd = b.finish();
  EXPECT_EQ(fdd.evaluate({1, 0, 0}), kDiscard);
  EXPECT_EQ(fdd.evaluate({1, 0, 3}), kAccept);
  EXPECT_EQ(fdd.evaluate({5, 0, 0}), kAccept);
  // Splitting on y after z on the same path must fail (ordering).
  FddBuilder b2(tiny3());
  const auto deep = b2.split(b2.root(), 2, {IntervalSet(Interval(0, 1))});
  EXPECT_THROW(b2.split(deep[0], 1, {IntervalSet(Interval(0, 1))}),
               std::logic_error);
}

TEST(Builder, RejectsBadSplits) {
  FddBuilder b(tiny2());
  // Overlapping partitions.
  EXPECT_THROW(b.split(b.root(), 0,
                       {IntervalSet(Interval(0, 4)),
                        IntervalSet(Interval(4, 7))}),
               std::invalid_argument);
  // Domain escape.
  EXPECT_THROW(b.split(b.root(), 0, {IntervalSet(Interval(0, 9))}),
               std::invalid_argument);
  // Empty partition list / empty set.
  EXPECT_THROW(b.split(b.root(), 0, {}), std::invalid_argument);
  EXPECT_THROW(b.split(b.root(), 0, {IntervalSet()}),
               std::invalid_argument);
  // Unknown field and unknown region.
  EXPECT_THROW(b.split(b.root(), 9, {IntervalSet(Interval(0, 1))}),
               std::invalid_argument);
  EXPECT_THROW(b.split(42, 0, {IntervalSet(Interval(0, 1))}),
               std::out_of_range);
}

TEST(Builder, RejectsDoubleCloseAndUnfinishedDesigns) {
  FddBuilder b(tiny2());
  const auto children = b.split(b.root(), 0, {IntervalSet(Interval(0, 3))});
  b.decide(children[0], kAccept);
  EXPECT_THROW(b.decide(children[0], kDiscard), std::logic_error);
  EXPECT_THROW(b.split(children[0], 1, {IntervalSet(Interval(0, 1))}),
               std::logic_error);
  EXPECT_EQ(b.open_regions(), 1u);
  EXPECT_THROW(b.finish(), std::logic_error);  // children[1] undecided
}

TEST(Builder, ClosedPredicate) {
  FddBuilder b(tiny2());
  EXPECT_FALSE(b.closed(b.root()));
  const auto children = b.split(b.root(), 1, {IntervalSet(Interval(0, 3))});
  EXPECT_TRUE(b.closed(b.root()));
  EXPECT_FALSE(b.closed(children[0]));
}

// The paper's Section 7.2 workflow: one team designs by FDD, rules are
// generated from the diagram, and the result compares cleanly against a
// rule-based design of the same intent.
TEST(Builder, DesignByFddMatchesEquivalentRuleDesign) {
  const Schema schema = example_schema();
  const std::uint32_t alpha = *parse_ipv4("224.168.0.0");
  const std::uint32_t beta = *parse_ipv4("224.168.255.255");
  const std::uint32_t gamma = *parse_ipv4("192.168.0.1");

  FddBuilder b(schema);
  // Split on interface first: inside traffic is accepted outright.
  const auto on_iface = b.split(b.root(), 0, {IntervalSet(Interval(0, 0))});
  b.decide(on_iface[1], kAccept);
  // Outside: malicious domain discarded, mail to the server accepted, ...
  const auto on_src =
      b.split(on_iface[0], 1, {IntervalSet(Interval(alpha, beta))});
  b.decide(on_src[0], kDiscard);
  const auto on_dst =
      b.split(on_src[1], 2, {IntervalSet(Interval::point(gamma))});
  b.decide(on_dst[1], kAccept);
  const auto on_port =
      b.split(on_dst[0], 3, {IntervalSet(Interval::point(25))});
  b.decide(on_port[1], kDiscard);
  const auto on_proto =
      b.split(on_port[0], 4, {IntervalSet(Interval::point(0))});
  b.decide(on_proto[0], kAccept);
  b.decide(on_proto[1], kDiscard);
  const Fdd designed = b.finish();

  // Team B's firewall from the paper (Table 2) captures the same intent.
  const Policy team_b = parse_policy(schema, default_decisions(),
                                     "discard I=0 S=224.168.0.0/16\n"
                                     "accept  I=0 D=192.168.0.1 N=25 P=tcp\n"
                                     "discard I=0 D=192.168.0.1\n"
                                     "accept\n");
  const Policy generated = generate_policy(designed);
  EXPECT_TRUE(equivalent(generated, team_b));
}

TEST(Builder, ReusableAfterFinish) {
  FddBuilder b(tiny2());
  b.decide(b.root(), kAccept);
  const Fdd first = b.finish();
  EXPECT_EQ(first.evaluate({0, 0}), kAccept);
  // The builder resets to a fresh open root.
  EXPECT_EQ(b.open_regions(), 1u);
  b.decide(b.root(), kDiscard);
  const Fdd second = b.finish();
  EXPECT_EQ(second.evaluate({0, 0}), kDiscard);
}

}  // namespace
}  // namespace dfw
