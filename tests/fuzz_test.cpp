// Robustness ("fuzz-lite") tests: every parser in the library must either
// succeed or throw its documented exception on arbitrary input — never
// crash, hang, or silently mis-parse. We drive each entry point with
// random byte salads and with random mutations of valid inputs, seeded
// and bounded so the suite stays deterministic and fast.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "adapters/cisco.hpp"
#include "adapters/iptables.hpp"
#include "fdd/construct.hpp"
#include "fdd/serialize.hpp"
#include "fw/parser.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

std::string random_bytes(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len(0, max_len);
  // Printable-heavy alphabet with the separators the parsers care about.
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 .:,/-=*#!\n\t";
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string out;
  const std::size_t n = len(rng);
  for (std::size_t i = 0; i < n; ++i) {
    out += kAlphabet[pick(rng)];
  }
  return out;
}

std::string mutate(std::string text, std::mt19937_64& rng) {
  if (text.empty()) {
    return text;
  }
  std::uniform_int_distribution<std::size_t> pos(0, text.size() - 1);
  std::uniform_int_distribution<int> op(0, 2);
  static constexpr char kNoise[] = "0:,/-=*x\n";
  std::uniform_int_distribution<std::size_t> noise(0, sizeof(kNoise) - 2);
  switch (op(rng)) {
    case 0:  // flip a character
      text[pos(rng)] = kNoise[noise(rng)];
      break;
    case 1:  // delete a character
      text.erase(pos(rng), 1);
      break;
    default:  // duplicate a chunk
      text.insert(pos(rng), text.substr(pos(rng), 5));
      break;
  }
  return text;
}

TEST(Fuzz, NativeParserNeverCrashes) {
  std::mt19937_64 rng(1001);
  const Schema schema = five_tuple_schema();
  for (int i = 0; i < 400; ++i) {
    const std::string input = random_bytes(rng, 200);
    try {
      (void)parse_policy(schema, default_decisions(), input);
    } catch (const ParseError&) {
      // expected for garbage
    }
  }
}

TEST(Fuzz, MutatedNativeInputEitherParsesOrThrows) {
  std::mt19937_64 rng(1002);
  const std::string valid =
      "discard sip=224.168.0.0/16\n"
      "accept dip=192.168.0.1 dport=25 proto=tcp\n"
      "accept\n";
  const Schema schema = five_tuple_schema();
  for (int i = 0; i < 400; ++i) {
    std::string input = valid;
    const int mutations = 1 + (i % 4);
    for (int m = 0; m < mutations; ++m) {
      input = mutate(std::move(input), rng);
    }
    try {
      const Policy p = parse_policy(schema, default_decisions(), input);
      // If it parsed, it must be internally consistent.
      EXPECT_GE(p.size(), 1u);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, IptablesParserNeverCrashes) {
  std::mt19937_64 rng(1003);
  const std::string valid =
      ":INPUT DROP [0:0]\n"
      "-A INPUT -s 10.0.0.0/8 -p tcp --dport 25 -j ACCEPT\n";
  for (int i = 0; i < 400; ++i) {
    const std::string input =
        (i % 2 == 0) ? random_bytes(rng, 200) : mutate(valid, rng);
    try {
      (void)parse_iptables_save(input, "INPUT");
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, CiscoParserNeverCrashes) {
  std::mt19937_64 rng(1004);
  const std::string valid =
      "access-list 101 permit tcp any host 192.168.0.1 eq smtp\n"
      "access-list 101 deny ip 224.168.0.0 0.0.255.255 any\n";
  for (int i = 0; i < 400; ++i) {
    const std::string input =
        (i % 2 == 0) ? random_bytes(rng, 200) : mutate(valid, rng);
    try {
      (void)parse_cisco_acl(input, "101");
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, FddDeserializerNeverCrashes) {
  std::mt19937_64 rng(1005);
  SynthConfig config;
  config.num_rules = 10;
  Rng srng(5);
  const Policy p = synth_policy(config, srng);
  const std::string valid = serialize_fdd(build_reduced_fdd(p));
  const Schema schema = five_tuple_schema();
  for (int i = 0; i < 400; ++i) {
    const std::string input =
        (i % 2 == 0) ? "dfdd 1\nschema 5\n" + random_bytes(rng, 150)
                     : mutate(valid, rng);
    try {
      (void)deserialize_fdd(schema, input);
    } catch (const std::invalid_argument&) {
    } catch (const std::logic_error&) {
    }
  }
}

TEST(Fuzz, ValidInputsStillParseAfterNoOpMutationCheck) {
  // Sanity guard on the harness itself: the unmutated inputs must parse.
  const Schema schema = five_tuple_schema();
  EXPECT_NO_THROW(parse_policy(schema, default_decisions(),
                               "discard sip=224.168.0.0/16\naccept\n"));
  EXPECT_NO_THROW(parse_iptables_save(
      ":INPUT DROP [0:0]\n-A INPUT -p tcp -j ACCEPT\n", "INPUT"));
  EXPECT_NO_THROW(
      parse_cisco_acl("access-list 101 permit ip any any\n", "101"));
}

}  // namespace
}  // namespace dfw
