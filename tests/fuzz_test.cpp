// Robustness ("fuzz-lite") tests: every parser in the library must either
// succeed or throw its documented exception on arbitrary input — never
// crash, hang, or silently mis-parse. We drive each entry point with
// random byte salads and with deterministic mutations of valid inputs at
// three structural levels (byte, token, line), seeded from the checked-in
// corpus under tests/corpus/ so the suite stays reproducible and fast.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "adapters/cisco.hpp"
#include "adapters/iptables.hpp"
#include "engine/classifier.hpp"
#include "fleet/fleet.hpp"
#include "fdd/construct.hpp"
#include "fdd/serialize.hpp"
#include "fw/parser.hpp"
#include "lint/baseline.hpp"
#include "lint/sarif.hpp"
#include "serve/snapshot.hpp"
#include "synth/synth.hpp"

#ifndef DFW_CORPUS_DIR
#error "DFW_CORPUS_DIR must point at tests/corpus (set by CMake)"
#endif

namespace dfw {
namespace {

// ---------------------------------------------------------------------------
// Corpus loading

std::vector<std::string> load_corpus(const std::string& subdir) {
  const std::filesystem::path dir =
      std::filesystem::path(DFW_CORPUS_DIR) / subdir;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      paths.push_back(entry.path());
    }
  }
  // Directory iteration order is unspecified; sort for determinism.
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> seeds;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    seeds.push_back(std::move(buf).str());
  }
  EXPECT_FALSE(seeds.empty()) << "empty corpus directory: " << dir;
  return seeds;
}

// ---------------------------------------------------------------------------
// Mutators. Three structural levels: bytes (blind corruption), tokens
// (valid-looking pieces in wrong places), lines (records reordered,
// duplicated, or dropped). Token- and line-level mutants exercise much
// deeper parser states than byte flips because the lexer still succeeds.

std::string random_bytes(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len(0, max_len);
  // Printable-heavy alphabet with the separators the parsers care about.
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 .:,/-=*#!\n\t";
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string out;
  const std::size_t n = len(rng);
  for (std::size_t i = 0; i < n; ++i) {
    out += kAlphabet[pick(rng)];
  }
  return out;
}

std::string mutate(std::string text, std::mt19937_64& rng) {
  if (text.empty()) {
    return text;
  }
  std::uniform_int_distribution<std::size_t> pos(0, text.size() - 1);
  std::uniform_int_distribution<int> op(0, 2);
  static constexpr char kNoise[] = "0:,/-=*x\n";
  std::uniform_int_distribution<std::size_t> noise(0, sizeof(kNoise) - 2);
  switch (op(rng)) {
    case 0:  // flip a character
      text[pos(rng)] = kNoise[noise(rng)];
      break;
    case 1:  // delete a character
      text.erase(pos(rng), 1);
      break;
    default:  // duplicate a chunk
      text.insert(pos(rng), text.substr(pos(rng), 5));
      break;
  }
  return text;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    parts.push_back(cur);
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (const std::string& p : parts) {
    out += p;
    out += sep;
  }
  return out;
}

// Token-level mutation: treat the input as whitespace-separated tokens and
// delete, duplicate, swap, or substitute whole tokens. Substitutions come
// from a pool of tokens that are individually valid somewhere in the
// grammar, so mutants frequently pass the lexer and die (or survive) deep
// inside semantic checks.
std::string mutate_tokens(const std::string& text, std::mt19937_64& rng) {
  static const char* kPool[] = {
      "accept", "discard", "any",  "host", "eq",   "0",     "65535",
      "tcp",    "N",       "T",    "E",    "root", "nodes", "-j",
      "0:7",    "1:0",     "4294967295", "18446744073709551615",
  };
  std::vector<std::string> lines = split(text, '\n');
  if (lines.empty()) {
    return text;
  }
  std::uniform_int_distribution<std::size_t> pick_line(0, lines.size() - 1);
  std::string& line = lines[pick_line(rng)];
  std::vector<std::string> toks = split(line, ' ');
  if (toks.empty()) {
    return text;
  }
  std::uniform_int_distribution<std::size_t> pick_tok(0, toks.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_pool(
      0, std::size(kPool) - 1);
  switch (std::uniform_int_distribution<int>(0, 3)(rng)) {
    case 0:  // substitute
      toks[pick_tok(rng)] = kPool[pick_pool(rng)];
      break;
    case 1:  // delete
      toks.erase(toks.begin() + static_cast<long>(pick_tok(rng)));
      break;
    case 2:  // duplicate
      toks.insert(toks.begin() + static_cast<long>(pick_tok(rng)),
                  toks[pick_tok(rng)]);
      break;
    default:  // swap two tokens
      std::swap(toks[pick_tok(rng)], toks[pick_tok(rng)]);
      break;
  }
  std::string rebuilt;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (i != 0) {
      rebuilt += ' ';
    }
    rebuilt += toks[i];
  }
  line = rebuilt;
  return join(lines, '\n');
}

// Line-level mutation: delete, duplicate, or swap whole records. This is
// the interesting level for the FDD formats, where inter-line invariants
// (preorder shape, children-first ids, field order) carry the meaning.
std::string mutate_lines(const std::string& text, std::mt19937_64& rng) {
  std::vector<std::string> lines = split(text, '\n');
  if (lines.size() < 2) {
    return text;
  }
  std::uniform_int_distribution<std::size_t> pick(0, lines.size() - 1);
  switch (std::uniform_int_distribution<int>(0, 2)(rng)) {
    case 0:  // delete a line
      lines.erase(lines.begin() + static_cast<long>(pick(rng)));
      break;
    case 1:  // duplicate a line
      lines.insert(lines.begin() + static_cast<long>(pick(rng)),
                   lines[pick(rng)]);
      break;
    default:  // swap two lines
      std::swap(lines[pick(rng)], lines[pick(rng)]);
      break;
  }
  return join(lines, '\n');
}

// Applies 1..3 mutations at a structural level chosen per iteration.
std::string mutant_of(const std::string& seed, int round,
                      std::mt19937_64& rng) {
  std::string input = seed;
  const int mutations = 1 + (round % 3);
  for (int m = 0; m < mutations; ++m) {
    switch ((round + m) % 3) {
      case 0:
        input = mutate(std::move(input), rng);
        break;
      case 1:
        input = mutate_tokens(input, rng);
        break;
      default:
        input = mutate_lines(input, rng);
        break;
    }
  }
  return input;
}

// ---------------------------------------------------------------------------
// Random-bytes smoke tests (kept from the original fuzz-lite harness).

TEST(Fuzz, NativeParserNeverCrashes) {
  std::mt19937_64 rng(1001);
  const Schema schema = five_tuple_schema();
  for (int i = 0; i < 400; ++i) {
    const std::string input = random_bytes(rng, 200);
    try {
      (void)parse_policy(schema, default_decisions(), input);
    } catch (const ParseError&) {
      // expected for garbage
    }
  }
}

TEST(Fuzz, MutatedNativeInputEitherParsesOrThrows) {
  std::mt19937_64 rng(1002);
  const std::string valid =
      "discard sip=224.168.0.0/16\n"
      "accept dip=192.168.0.1 dport=25 proto=tcp\n"
      "accept\n";
  const Schema schema = five_tuple_schema();
  for (int i = 0; i < 400; ++i) {
    std::string input = valid;
    const int mutations = 1 + (i % 4);
    for (int m = 0; m < mutations; ++m) {
      input = mutate(std::move(input), rng);
    }
    try {
      const Policy p = parse_policy(schema, default_decisions(), input);
      // If it parsed, it must be internally consistent.
      EXPECT_GE(p.size(), 1u);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, IptablesParserNeverCrashes) {
  std::mt19937_64 rng(1003);
  const std::string valid =
      ":INPUT DROP [0:0]\n"
      "-A INPUT -s 10.0.0.0/8 -p tcp --dport 25 -j ACCEPT\n";
  for (int i = 0; i < 400; ++i) {
    const std::string input =
        (i % 2 == 0) ? random_bytes(rng, 200) : mutate(valid, rng);
    try {
      (void)parse_iptables_save(input, "INPUT");
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, CiscoParserNeverCrashes) {
  std::mt19937_64 rng(1004);
  const std::string valid =
      "access-list 101 permit tcp any host 192.168.0.1 eq smtp\n"
      "access-list 101 deny ip 224.168.0.0 0.0.255.255 any\n";
  for (int i = 0; i < 400; ++i) {
    const std::string input =
        (i % 2 == 0) ? random_bytes(rng, 200) : mutate(valid, rng);
    try {
      (void)parse_cisco_acl(input, "101");
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, FddDeserializerNeverCrashes) {
  std::mt19937_64 rng(1005);
  SynthConfig config;
  config.num_rules = 10;
  Rng srng(5);
  const Policy p = synth_policy(config, srng);
  const std::string valid = serialize_fdd(build_reduced_fdd(p));
  const Schema schema = five_tuple_schema();
  for (int i = 0; i < 400; ++i) {
    const std::string input =
        (i % 2 == 0) ? "dfdd 1\nschema 5\n" + random_bytes(rng, 150)
                     : mutate(valid, rng);
    try {
      (void)deserialize_fdd(schema, input);
    } catch (const std::logic_error&) {
      // invalid_argument (parse) or logic_error (semantic validation)
    }
  }
}

// ---------------------------------------------------------------------------
// Corpus-driven structure-aware fuzzing. Every seed in tests/corpus/ must
// parse unmutated; its mutants must parse or throw the documented
// exception.

TEST(CorpusFuzz, SeedsAreValid) {
  const Schema schema = five_tuple_schema();
  for (const std::string& seed : load_corpus("native")) {
    EXPECT_NO_THROW((void)parse_policy(schema, default_decisions(), seed))
        << seed;
  }
  for (const std::string& seed : load_corpus("iptables")) {
    EXPECT_NO_THROW((void)parse_iptables_save(seed, "INPUT")) << seed;
  }
  for (const std::string& seed : load_corpus("cisco")) {
    EXPECT_NO_THROW((void)parse_cisco_acl(seed, "101")) << seed;
  }
  for (const std::string& seed : load_corpus("fdd")) {
    Fdd fdd = deserialize_fdd(schema, seed);
    EXPECT_GE(subtree_node_count(fdd.root()), 1u) << seed;
  }
}

TEST(CorpusFuzz, NativeMutants) {
  std::mt19937_64 rng(2001);
  const Schema schema = five_tuple_schema();
  for (const std::string& seed : load_corpus("native")) {
    for (int i = 0; i < 300; ++i) {
      const std::string input = mutant_of(seed, i, rng);
      try {
        const Policy p = parse_policy(schema, default_decisions(), input);
        EXPECT_GE(p.size(), 1u);
      } catch (const ParseError&) {
      }
    }
  }
}

TEST(CorpusFuzz, IptablesMutants) {
  std::mt19937_64 rng(2002);
  for (const std::string& seed : load_corpus("iptables")) {
    for (int i = 0; i < 300; ++i) {
      const std::string input = mutant_of(seed, i, rng);
      try {
        const Policy p = parse_iptables_save(input, "INPUT");
        EXPECT_GE(p.size(), 1u);
      } catch (const ParseError&) {
      }
    }
  }
}

TEST(CorpusFuzz, CiscoMutants) {
  std::mt19937_64 rng(2003);
  for (const std::string& seed : load_corpus("cisco")) {
    for (int i = 0; i < 300; ++i) {
      const std::string input = mutant_of(seed, i, rng);
      try {
        const Policy p = parse_cisco_acl(input, "101");
        EXPECT_GE(p.size(), 1u);
      } catch (const ParseError&) {
      }
    }
  }
}

TEST(CorpusFuzz, FddMutants) {
  std::mt19937_64 rng(2004);
  const Schema schema = five_tuple_schema();
  for (const std::string& seed : load_corpus("fdd")) {
    for (int i = 0; i < 300; ++i) {
      const std::string input = mutant_of(seed, i, rng);
      try {
        Fdd fdd = deserialize_fdd(schema, input);
        // A mutant that still deserializes must be a valid diagram; the
        // deserializer validates, so just touch it.
        EXPECT_GE(subtree_node_count(fdd.root()), 1u);
      } catch (const std::logic_error&) {
      }
    }
  }
}

// The compiled-backend surface on hostile diagrams: whatever the
// deserializer accepts (seed or mutant), every classifier backend must
// either compile it or throw its documented exception — and whenever all
// of them compile, they must agree with the interpreted walk on random
// in-domain packets.
TEST(CorpusFuzz, ClassifierBackendCompileOnFddSeeds) {
  std::mt19937_64 rng(2006);
  const Schema schema = five_tuple_schema();
  for (const std::string& seed : load_corpus("fdd")) {
    for (int i = 0; i < 60; ++i) {
      std::optional<Fdd> fdd;
      try {
        fdd.emplace(deserialize_fdd(
            schema, i == 0 ? seed : mutant_of(seed, i, rng)));
      } catch (const std::logic_error&) {
        continue;
      }
      std::vector<Classifier> compiled;
      try {
        for (const auto kind : {ClassifierBackendKind::kFlatSlab,
                                ClassifierBackendKind::kPrefixTrie,
                                ClassifierBackendKind::kBitParallel}) {
          CompileOptions options;
          options.backend = kind;
          compiled.push_back(Classifier::compile(*fdd, options));
        }
      } catch (const Error& e) {
        ASSERT_EQ(e.code(), ErrorCode::kCapacityExceeded)
            << "unexpected structured error: " << e.what();
        continue;  // bit-parallel path cap — documented refusal
      } catch (const std::logic_error&) {
        continue;  // validate() rejected an incomplete mutant
      }
      for (int probe = 0; probe < 20; ++probe) {
        Packet pkt;
        for (std::size_t f = 0; f < schema.field_count(); ++f) {
          std::uniform_int_distribution<Value> pick(schema.domain(f).lo(),
                                                    schema.domain(f).hi());
          pkt.push_back(pick(rng));
        }
        const Decision want = fdd->evaluate(pkt);
        for (const Classifier& c : compiled) {
          ASSERT_EQ(c.classify(pkt), want) << to_string(c.backend());
        }
      }
    }
  }
}

// Valid serialized diagrams must survive both formats losslessly,
// including cross-format conversion: v1 text -> diagram -> v2 text ->
// diagram and back.
TEST(CorpusFuzz, FddRoundTripsBothFormats) {
  const Schema schema = five_tuple_schema();
  for (const std::string& seed : load_corpus("fdd")) {
    const Fdd original = deserialize_fdd(schema, seed);
    const Fdd via_tree = deserialize_fdd(schema, serialize_fdd(original));
    EXPECT_TRUE(structurally_equal(original, via_tree)) << seed;
    const Fdd via_dag = deserialize_fdd(schema, serialize_fdd_dag(original));
    EXPECT_TRUE(structurally_equal(original, via_dag)) << seed;
    // Cross-format: dag text of the tree-loaded diagram and vice versa.
    const Fdd cross =
        deserialize_fdd(schema, serialize_fdd_dag(via_tree));
    EXPECT_TRUE(structurally_equal(original, cross)) << seed;
  }
}

// The lint CLI's own input surfaces: baseline files and SARIF logs. Both
// are accept-or-reject parsers (no exceptions in their contract), so the
// invariant is simply "never crash, never hang" — plus agreement between
// parse_baseline's return value and its error report.
TEST(CorpusFuzz, LintBaselineAndSarifSurfaces) {
  std::mt19937_64 rng(2005);
  const std::vector<std::string> seeds = load_corpus("lint");
  for (const std::string& seed : seeds) {
    for (int i = 0; i < 200; ++i) {
      const std::string input =
          (i % 5 == 0) ? random_bytes(rng, 200) : mutant_of(seed, i, rng);
      std::string error;
      const auto baseline = lint::parse_baseline(input, &error);
      if (baseline.has_value()) {
        EXPECT_TRUE(error.empty()) << input;
        EXPECT_TRUE(std::is_sorted(baseline->fingerprints.begin(),
                                   baseline->fingerprints.end()));
      } else {
        EXPECT_FALSE(error.empty()) << input;
      }
      const lint::SarifValidation v = lint::validate_sarif(input);
      EXPECT_EQ(v.ok, v.problems.empty());
    }
  }
}

TEST(CorpusFuzz, LintSeedsBehaveAsDocumented) {
  // The checked-in seeds pin the surfaces' contracts: the baseline seed
  // parses, the SARIF seed validates, and the malformed adapter inputs
  // raise ParseError (the CLI's exit-2 path), never anything else.
  for (const std::string& seed : load_corpus("lint")) {
    if (seed.find("fingerprint") != std::string::npos ||
        seed.rfind("# dfw-lint", 0) == 0) {
      EXPECT_TRUE(lint::parse_baseline(seed, nullptr).has_value()) << seed;
    }
    if (seed.find("\"version\"") != std::string::npos) {
      EXPECT_TRUE(lint::validate_sarif(seed).ok) << seed;
    }
    if (seed.rfind(":INPUT", 0) == 0) {
      EXPECT_THROW((void)parse_iptables_save(seed, "INPUT"), ParseError);
    }
    if (seed.rfind("access-list", 0) == 0) {
      EXPECT_THROW((void)parse_cisco_acl(seed, "101"), ParseError);
    }
  }
}

// The serve snapshot loader ("dfws 1", serve/snapshot.hpp) boots a
// daemon from disk, so its input is by definition untrusted (torn
// writes, disk corruption, stale files). Its contract is the narrowest
// in the library: decode or throw dfw::Error — nothing else, ever.

TEST(Fuzz, SnapshotDecoderNeverCrashes) {
  std::mt19937_64 rng(1006);
  const Schema schema = five_tuple_schema();
  for (int i = 0; i < 400; ++i) {
    const std::string input =
        (i % 2 == 0) ? random_bytes(rng, 300)
                     : "dfws 1\nsequence 2\n" + random_bytes(rng, 250);
    try {
      (void)serve::snapshot::decode(schema, default_decisions(), input);
    } catch (const Error&) {
      // the documented (and only) failure mode
    }
  }
}

TEST(CorpusFuzz, SnapshotSeedsBehaveAsDocumented) {
  // Filename prefixes pin the contract: valid_* seeds decode; bad_*
  // seeds (bad magic, truncation, checksum flip) throw dfw::Error.
  const Schema schema = five_tuple_schema();
  const std::filesystem::path dir =
      std::filesystem::path(DFW_CORPUS_DIR) / "snapshot";
  std::size_t valid_seen = 0;
  std::size_t bad_seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string seed = std::move(buf).str();
    if (name.rfind("valid_", 0) == 0) {
      ++valid_seen;
      const auto data =
          serve::snapshot::decode(schema, default_decisions(), seed);
      EXPECT_GE(data.sequence, 1u) << name;
    } else if (name.rfind("bad_", 0) == 0) {
      ++bad_seen;
      EXPECT_THROW(
          (void)serve::snapshot::decode(schema, default_decisions(), seed),
          Error)
          << name;
    } else {
      ADD_FAILURE() << "unclassified snapshot seed: " << name;
    }
  }
  EXPECT_GE(valid_seen, 1u);
  EXPECT_GE(bad_seen, 3u);
}

TEST(CorpusFuzz, SnapshotMutants) {
  std::mt19937_64 rng(2007);
  const Schema schema = five_tuple_schema();
  for (const std::string& seed : load_corpus("snapshot")) {
    for (int i = 0; i < 300; ++i) {
      const std::string input = mutant_of(seed, i, rng);
      try {
        const auto data =
            serve::snapshot::decode(schema, default_decisions(), input);
        // The checksum makes accidental acceptance astronomically
        // unlikely, but any accepted mutant must be fully coherent.
        EXPECT_GE(data.sequence, 1u);
      } catch (const Error&) {
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The fleet manifest parser (fleet/fleet.hpp) eats operator-authored
// files; it must accept or reject (nullopt plus a line-numbered message),
// never crash.

TEST(Fuzz, FleetManifestParserNeverCrashes) {
  std::mt19937_64 rng(4242);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = random_bytes(rng, 200);
    std::string error;
    const auto parsed = fleet::parse_fleet_manifest(input, &error);
    if (!parsed.has_value()) {
      EXPECT_FALSE(error.empty()) << input;
      EXPECT_NE(error.find("line "), std::string::npos) << input;
    }
  }
}

TEST(CorpusFuzz, FleetManifestSeedsBehaveAsDocumented) {
  // Filename prefixes pin the contract: valid_* seeds parse (and their
  // referenced sibling-corpus paths exist); bad_* seeds are rejected
  // with a line-numbered message.
  const std::filesystem::path dir =
      std::filesystem::path(DFW_CORPUS_DIR) / "fleet";
  std::size_t valid_seen = 0;
  std::size_t bad_seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string seed = std::move(buf).str();
    std::string error;
    const auto parsed = fleet::parse_fleet_manifest(seed, &error);
    if (name.rfind("valid_", 0) == 0) {
      ++valid_seen;
      ASSERT_TRUE(parsed.has_value()) << name << ": " << error;
      EXPECT_FALSE(parsed->empty()) << name;
      for (const fleet::FleetItem& item : *parsed) {
        EXPECT_TRUE(std::filesystem::exists(dir / item.path))
            << name << " references missing " << item.path;
      }
    } else if (name.rfind("bad_", 0) == 0) {
      ++bad_seen;
      EXPECT_FALSE(parsed.has_value()) << name;
      EXPECT_NE(error.find("line "), std::string::npos) << name;
    } else {
      ADD_FAILURE() << "unclassified fleet seed: " << name;
    }
  }
  EXPECT_GE(valid_seen, 1u);
  EXPECT_GE(bad_seen, 3u);
}

TEST(CorpusFuzz, FleetManifestMutants) {
  std::mt19937_64 rng(2008);
  for (const std::string& seed : load_corpus("fleet")) {
    for (int i = 0; i < 300; ++i) {
      const std::string input = mutant_of(seed, i, rng);
      std::string error;
      const auto parsed = fleet::parse_fleet_manifest(input, &error);
      if (!parsed.has_value()) {
        EXPECT_FALSE(error.empty());
      }
    }
  }
}

TEST(Fuzz, ValidInputsStillParseAfterNoOpMutationCheck) {
  // Sanity guard on the harness itself: the unmutated inputs must parse.
  const Schema schema = five_tuple_schema();
  EXPECT_NO_THROW(parse_policy(schema, default_decisions(),
                               "discard sip=224.168.0.0/16\naccept\n"));
  EXPECT_NO_THROW(parse_iptables_save(
      ":INPUT DROP [0:0]\n-A INPUT -p tcp -j ACCEPT\n", "INPUT"));
  EXPECT_NO_THROW(
      parse_cisco_acl("access-list 101 permit ip any any\n", "101"));
}

}  // namespace
}  // namespace dfw
