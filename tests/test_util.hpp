// Shared helpers for the dfw test suite: tiny schemas whose packet spaces
// can be enumerated exhaustively, random policy generation over them, and
// brute-force semantic comparison. Property tests check the *algorithms*
// against brute force on these small universes, where every packet can be
// tried.

#pragma once

#include <random>
#include <vector>

#include "fdd/fdd.hpp"
#include "fw/policy.hpp"

namespace dfw::test {

/// Two fields with domains [0,7] and [0,7]: 64 packets.
inline Schema tiny2() {
  return Schema({{"x", Interval(0, 7), FieldKind::kInteger},
                 {"y", Interval(0, 7), FieldKind::kInteger}});
}

/// Three fields with domains [0,5], [0,3], [0,3]: 96 packets.
inline Schema tiny3() {
  return Schema({{"x", Interval(0, 5), FieldKind::kInteger},
                 {"y", Interval(0, 3), FieldKind::kInteger},
                 {"z", Interval(0, 3), FieldKind::kInteger}});
}

/// Enumerates every packet of a schema (requires a small packet space).
inline std::vector<Packet> all_packets(const Schema& schema) {
  std::vector<Packet> packets;
  Packet current(schema.field_count(), 0);
  const auto recurse = [&](auto&& self, std::size_t field) -> void {
    if (field == schema.field_count()) {
      packets.push_back(current);
      return;
    }
    for (Value v = schema.domain(field).lo(); v <= schema.domain(field).hi();
         ++v) {
      current[field] = v;
      self(self, field + 1);
    }
  };
  recurse(recurse, 0);
  return packets;
}

/// A random interval within [domain.lo(), domain.hi()].
inline Interval random_interval(const Interval& domain, std::mt19937_64& rng) {
  std::uniform_int_distribution<Value> lo_pick(domain.lo(), domain.hi());
  const Value lo = lo_pick(rng);
  std::uniform_int_distribution<Value> hi_pick(lo, domain.hi());
  return Interval(lo, hi_pick(rng));
}

/// A random interval set: 1-2 runs within the domain.
inline IntervalSet random_set(const Interval& domain, std::mt19937_64& rng) {
  IntervalSet s(random_interval(domain, rng));
  std::uniform_int_distribution<int> coin(0, 2);
  if (coin(rng) == 0) {
    s.add(random_interval(domain, rng));
  }
  return s;
}

/// A random comprehensive policy: n-1 random rules plus a catch-all, with
/// random accept/discard decisions.
inline Policy random_policy(const Schema& schema, std::size_t n,
                            std::mt19937_64& rng) {
  std::vector<Rule> rules;
  std::uniform_int_distribution<int> coin(0, 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::vector<IntervalSet> conjuncts;
    for (std::size_t f = 0; f < schema.field_count(); ++f) {
      conjuncts.push_back(random_set(schema.domain(f), rng));
    }
    rules.emplace_back(schema, std::move(conjuncts),
                       coin(rng) == 0 ? kAccept : kDiscard);
  }
  rules.push_back(
      Rule::catch_all(schema, coin(rng) == 0 ? kAccept : kDiscard));
  return Policy(schema, std::move(rules));
}

/// Brute-force check that an FDD implements exactly the policy's mapping.
inline bool fdd_matches_policy(const Fdd& fdd, const Policy& policy) {
  for (const Packet& p : all_packets(policy.schema())) {
    if (fdd.evaluate(p) != policy.evaluate(p)) {
      return false;
    }
  }
  return true;
}

}  // namespace dfw::test
