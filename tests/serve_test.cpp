// The serve layer's contract, including the PR's correctness gate: under
// a storm of concurrent hot swaps, every batch a reader shard classifies
// must be byte-identical to a serial replay of the same packets against
// the pinned version's policy, with zero dropped lookups and every
// retired version reclaimed once the storm drains.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "engine/trace.hpp"
#include "fw/rule.hpp"
#include "net/interval.hpp"
#include "net/interval_set.hpp"
#include "rt/epoch.hpp"
#include "rt/executor.hpp"
#include "rt/govern.hpp"
#include "serve/serve.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

using serve::BatchResult;
using serve::ServeCore;
using serve::ServeOptions;
using serve::ServeStats;

Policy make_policy(std::size_t rules, std::uint64_t seed) {
  SynthConfig config;
  config.num_rules = rules;
  Rng rng(seed);
  return synth_policy(config, rng);
}

std::vector<Decision> serial_replay(const Policy& policy,
                                    std::span<const Packet> packets) {
  std::vector<Decision> out;
  out.reserve(packets.size());
  for (const Packet& p : packets) {
    out.push_back(policy.evaluate(p));
  }
  return out;
}

// -- Epoch domain -------------------------------------------------------------

TEST(EpochDomain, SlotsRegisterUnregisterAndRecycle) {
  EpochDomain domain;
  EXPECT_EQ(domain.registered(), 0u);
  const std::size_t a = domain.register_slot();
  const std::size_t b = domain.register_slot();
  EXPECT_NE(a, b);
  EXPECT_EQ(domain.registered(), 2u);
  domain.unregister_slot(a);
  EXPECT_EQ(domain.registered(), 1u);
  const std::size_t c = domain.register_slot();
  EXPECT_EQ(c, a) << "freed slots are recycled";
  domain.unregister_slot(b);
  domain.unregister_slot(c);
  EXPECT_EQ(domain.registered(), 0u);
}

TEST(EpochDomain, MinActiveTracksTheOldestPin) {
  EpochDomain domain;
  const std::size_t slot = domain.register_slot();

  // Nothing pinned: every retire epoch is immediately reclaimable.
  EXPECT_GE(domain.min_active(), domain.advance());

  domain.enter(slot);
  const std::uint64_t pinned_at = domain.epoch();
  const std::uint64_t retire = domain.advance();
  EXPECT_EQ(domain.min_active(), pinned_at);
  EXPECT_LT(domain.min_active(), retire)
      << "a pin taken before the advance blocks that retire epoch";

  domain.exit(slot);
  EXPECT_GE(domain.min_active(), retire);
  domain.unregister_slot(slot);
}

TEST(EpochDomain, GuardPinsForItsScope) {
  EpochDomain domain;
  EpochRegistration reg(domain);
  ASSERT_TRUE(reg.valid());
  const std::uint64_t retire = [&] {
    EpochGuard guard(domain, reg.slot());
    return domain.advance();
  }();
  EXPECT_GE(domain.min_active(), retire) << "guard exit released the pin";
}

// -- Serve basics -------------------------------------------------------------

TEST(Serve, BootServesSequenceOneAndMatchesEvaluate) {
  const Policy policy = make_policy(30, 1);
  Rng rng(2);
  const std::vector<Packet> trace = synth_trace(policy, 500, rng);

  ServeCore core(policy, ServeOptions{});
  EXPECT_EQ(core.current_sequence(), 1u);

  const BatchResult result = core.classify_batch(trace);
  EXPECT_EQ(result.status, ErrorCode::kOk);
  EXPECT_EQ(result.version, 1u);
  EXPECT_EQ(result.decisions, serial_replay(policy, trace));

  const ServeStats stats = core.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.lookups, trace.size());
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(Serve, SwapPublishesRetiresAndReclaims) {
  const Policy first = make_policy(30, 3);
  const Policy second = make_policy(30, 4);
  Rng rng(5);
  const std::vector<Packet> trace = synth_trace(first, 500, rng);

  ServeCore core(first, ServeOptions{});
  const Result<std::uint64_t> swapped = core.swap(second);
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped.value(), 2u);
  EXPECT_EQ(core.current_sequence(), 2u);

  const BatchResult result = core.classify_batch(trace);
  EXPECT_EQ(result.version, 2u);
  EXPECT_EQ(result.decisions, serial_replay(second, trace));

  // No reader held a pin across the swap, so the retired boot version
  // was reclaimable inside swap() itself.
  const ServeStats stats = core.stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.reclaimed, 1u);
  EXPECT_EQ(stats.limbo, 0u);
}

TEST(Serve, GovernedSwapRejectionKeepsServingTheOldVersion) {
  const Policy small = make_policy(10, 6);
  // Plenty of rules over a near-empty node budget: the swap compile
  // must breach deterministically.
  const Policy huge = make_policy(200, 7);
  Rng rng(8);
  const std::vector<Packet> trace = synth_trace(small, 200, rng);

  ServeOptions options;
  options.swap_budgets.max_nodes = 8;
  ServeCore core(small, options);

  const Result<std::uint64_t> swapped = core.swap(huge);
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.code(), ErrorCode::kNodeBudgetExceeded);
  EXPECT_EQ(core.current_sequence(), 1u);

  const BatchResult result = core.classify_batch(trace);
  EXPECT_EQ(result.version, 1u);
  EXPECT_EQ(result.decisions, serial_replay(small, trace));

  const ServeStats stats = core.stats();
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(stats.swaps_rejected, 1u);
  EXPECT_EQ(stats.retired, 0u);
}

TEST(Serve, NonComprehensiveSwapIsRejectedNotFatal) {
  const Policy good = make_policy(10, 9);
  // One rule pinning field 0 to a single value: packets outside it fall
  // through, so FDD validation must refuse the swap.
  const Schema& schema = good.schema();
  std::vector<IntervalSet> conjuncts;
  conjuncts.emplace_back(Interval(0, 0));
  for (std::size_t i = 1; i < schema.field_count(); ++i) {
    conjuncts.emplace_back(schema.domain(i));
  }
  const Policy partial(schema, {Rule(schema, conjuncts, kAccept)});

  ServeCore core(good, ServeOptions{});
  const Result<std::uint64_t> swapped = core.swap(partial);
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(core.current_sequence(), 1u);
  EXPECT_EQ(core.stats().swaps_rejected, 1u);
}

TEST(Serve, AdmissionControlRefusesBatchesOverTheBound) {
  const Policy policy = make_policy(60, 10);
  Rng rng(11);
  const std::vector<Packet> big = synth_trace(policy, 400'000, rng);
  const std::vector<Packet> small = synth_trace(policy, 4, rng);

  ServeOptions options;
  options.max_inflight_batches = 1;
  ServeCore core(policy, options);

  // One reader occupies the single admission token with a large batch;
  // the main thread fires small batches at the core until one lands
  // inside the window and is refused. Bounded retries keep the test
  // deterministic-in-outcome without handshake hooks in the hot path.
  bool saw_rejection = false;
  for (int attempt = 0; attempt < 50 && !saw_rejection; ++attempt) {
    std::atomic<bool> started{false};
    std::thread reader([&] {
      auto shard = core.shard();
      started.store(true);
      const BatchResult r = shard.classify(big);
      EXPECT_EQ(r.status, ErrorCode::kOk);
    });
    while (!started.load()) {
      std::this_thread::yield();
    }
    for (int probe = 0; probe < 1000; ++probe) {
      const BatchResult r = core.classify_batch(small);
      if (r.status == ErrorCode::kOverloaded) {
        EXPECT_EQ(r.version, 0u);
        EXPECT_TRUE(r.decisions.empty());
        saw_rejection = true;
        break;
      }
      EXPECT_EQ(r.status, ErrorCode::kOk);
    }
    reader.join();
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(core.stats().batches_rejected, 1u);
  EXPECT_EQ(core.stats().inflight, 0u);
}

// -- The correctness gate -----------------------------------------------------
//
// A writer thread hot-swaps through a ring of pre-built policies (>= 100
// successful swaps) while reader shards classify batches continuously.
// Every reader records (version, batch index, decisions); afterwards each
// record is replayed serially against the policy that owned that version.
// The gate: byte-identical decisions for every batch, zero dropped
// lookups, and retired == reclaimed == swaps once drained.

void run_swap_storm(ClassifierBackendKind backend, std::uint64_t min_swaps) {
  constexpr std::size_t kPolicies = 8;
  constexpr std::size_t kReaders = 3;
  constexpr std::size_t kBatchesPerReader = 60;
  constexpr std::size_t kBatchLen = 64;
  const std::uint64_t kMinSwaps = min_swaps;

  std::vector<Policy> ring;
  ring.reserve(kPolicies);
  for (std::size_t i = 0; i < kPolicies; ++i) {
    ring.push_back(make_policy(20, 100 + i));
  }

  // A shared packet pool; batches are windows into it.
  Rng rng(42);
  const std::vector<Packet> pool = synth_trace(ring[0], 4096, rng);
  const auto batch_window = [&](std::size_t i) {
    const std::size_t start = (i * 97) % (pool.size() - kBatchLen);
    return std::span<const Packet>(pool).subspan(start, kBatchLen);
  };

  Executor executor(2);
  ServeOptions options;
  options.run.executor = &executor;
  options.batch_grain = 16;  // several chunks per batch
  options.backend = backend;
  ServeCore core(ring[0], options);

  // version sequence -> index into `ring`. Sequence 1 is the boot policy.
  std::map<std::uint64_t, std::size_t> version_policy;
  version_policy[1] = 0;
  std::mutex version_mu;

  std::atomic<bool> readers_done{false};
  std::thread writer([&] {
    std::uint64_t swaps = 0;
    std::size_t next = 1;
    while (swaps < kMinSwaps || !readers_done.load()) {
      const std::size_t idx = next++ % kPolicies;
      const Result<std::uint64_t> r = core.swap(ring[idx]);
      ASSERT_TRUE(r.ok());
      {
        std::lock_guard<std::mutex> lock(version_mu);
        version_policy[r.value()] = idx;
      }
      ++swaps;
    }
  });

  struct Record {
    std::uint64_t version;
    std::size_t batch;
    std::vector<Decision> decisions;
  };
  std::vector<std::vector<Record>> records(kReaders);
  std::vector<std::thread> readers;
  std::atomic<std::size_t> readers_finished{0};
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto shard = core.shard();
      for (std::size_t i = 0; i < kBatchesPerReader; ++i) {
        const std::size_t batch = r * kBatchesPerReader + i;
        BatchResult result = shard.classify(batch_window(batch));
        ASSERT_EQ(result.status, ErrorCode::kOk) << "dropped lookup";
        ASSERT_EQ(result.decisions.size(), kBatchLen);
        records[r].push_back(
            {result.version, batch, std::move(result.decisions)});
      }
      if (readers_finished.fetch_add(1) + 1 == kReaders) {
        readers_done.store(true);
      }
    });
  }
  for (std::thread& t : readers) {
    t.join();
  }
  writer.join();

  const ServeStats stats = core.stats();
  EXPECT_GE(stats.swaps, kMinSwaps);
  EXPECT_EQ(stats.swaps_rejected, 0u);
  EXPECT_EQ(stats.batches, kReaders * kBatchesPerReader);
  EXPECT_EQ(stats.batches_rejected, 0u);
  EXPECT_EQ(stats.lookups, kReaders * kBatchesPerReader * kBatchLen);

  // Every recorded batch replays byte-identically against the policy
  // that owned its pinned version.
  std::size_t replayed = 0;
  for (const std::vector<Record>& reader_records : records) {
    for (const Record& record : reader_records) {
      const auto it = version_policy.find(record.version);
      ASSERT_NE(it, version_policy.end())
          << "batch pinned an unpublished version " << record.version;
      EXPECT_EQ(record.decisions,
                serial_replay(ring[it->second], batch_window(record.batch)))
          << "version " << record.version << ", batch " << record.batch;
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, kReaders * kBatchesPerReader);

  // Quiescent drain: with all shards gone every retired version is
  // reclaimable, and each successful swap retired exactly one version.
  core.reclaim();
  const ServeStats drained = core.stats();
  EXPECT_EQ(drained.retired, drained.swaps);
  EXPECT_EQ(drained.reclaimed, drained.retired);
  EXPECT_EQ(drained.limbo, 0u);
}

TEST(ServeStorm, SerialReplayIsByteIdenticalAcrossHotSwaps) {
  run_swap_storm(ClassifierBackendKind::kFlatSlab, 100);
}

// The alternative backends run shorter storms: the gate is identical —
// byte-equal serial replay under concurrent swaps — and the flat-slab
// storm already soaks the swap machinery itself.
TEST(ServeStorm, PrefixTrieBackendReplaysByteIdentically) {
  run_swap_storm(ClassifierBackendKind::kPrefixTrie, 30);
}

TEST(ServeStorm, BitParallelBackendReplaysByteIdentically) {
  run_swap_storm(ClassifierBackendKind::kBitParallel, 30);
}

}  // namespace
}  // namespace dfw
