// Serve-plane throughput: sustained lookups/sec through ServeCore reader
// shards while an operator thread hot-swaps the policy at a fixed cadence.
// The sweep crosses reader-thread count {1, 2, 8} with swap period
// {none, 20ms, 2ms}; the interesting series is how little the swap
// cadence costs the readers — the RCU hot path never blocks on a swap,
// so throughput should be flat across a column up to compile interference
// on a loaded machine.
//
// Writes BENCH_serve.json (dfw-bench-obs-v1) next to the working
// directory, with the serve.* counters from each run's registry.
//
// --quick trims the sweep to threads {1, 2} x period {none, 2ms} but
// keeps the per-reader batch count identical, so every quick record is
// directly comparable to the committed full-sweep baseline under
// dfw_bench_diff --key-params=threads,swap_period_ms (the other params
// are measured outputs, not identity).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "engine/trace.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

constexpr std::size_t kRules = 100;
constexpr std::size_t kBatchLen = 512;
constexpr std::size_t kBatchesPerReader = 400;
constexpr std::size_t kPolicyRing = 4;

struct RunResult {
  std::uint64_t wall_ns = 0;
  std::uint64_t lookups = 0;
  std::uint64_t swaps = 0;
};

RunResult run_config(const std::vector<Policy>& ring,
                     const std::vector<Packet>& pool, std::size_t threads,
                     std::uint64_t swap_period_ms,
                     MetricsRegistry& registry) {
  serve::ServeOptions options;
  options.run.obs.metrics = &registry;
  serve::ServeCore core(ring[0], options);

  std::atomic<bool> done{false};
  std::thread writer;
  if (swap_period_ms != 0) {
    writer = std::thread([&] {
      std::size_t next = 1;
      while (!done.load()) {
        (void)core.swap(ring[next++ % ring.size()]);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(swap_period_ms));
      }
    });
  }

  std::atomic<std::uint64_t> lookups{0};
  const std::uint64_t wall_ns = bench::time_ns([&] {
    std::vector<std::thread> readers;
    for (std::size_t t = 0; t < threads; ++t) {
      readers.emplace_back([&, t] {
        auto shard = core.shard();
        std::uint64_t mine = 0;
        for (std::size_t i = 0; i < kBatchesPerReader; ++i) {
          const std::size_t start =
              ((t * kBatchesPerReader + i) * 131) % (pool.size() - kBatchLen);
          const auto batch =
              std::span<const Packet>(pool).subspan(start, kBatchLen);
          mine += shard.classify(batch).decisions.size();
        }
        lookups.fetch_add(mine);
      });
    }
    for (std::thread& r : readers) {
      r.join();
    }
  });
  done.store(true);
  if (writer.joinable()) {
    writer.join();
  }
  core.reclaim();

  return RunResult{wall_ns, lookups.load(), core.stats().swaps};
}

}  // namespace
}  // namespace dfw

int main(int argc, char** argv) {
  using namespace dfw;

  const std::optional<bool> quick_flag = bench::parse_quick_flag(argc, argv);
  if (!quick_flag.has_value()) {
    std::fprintf(stderr, "usage: bench_serve [--quick]\n");
    return 2;
  }
  const bool quick = *quick_flag;

  SynthConfig config;
  config.num_rules = kRules;
  Rng rng(2026);
  std::vector<Policy> ring;
  for (std::size_t i = 0; i < kPolicyRing; ++i) {
    ring.push_back(i == 0 ? synth_policy(config, rng)
                          : perturb_policy(ring[0], 10.0, rng));
  }
  const std::vector<Packet> pool = synth_trace(ring[0], 1 << 16, rng);

  bench::ObsReport report("bench_serve");
  std::printf("%8s %14s %10s %8s %14s\n", "threads", "swap_period_ms",
              "lookups", "swaps", "lookups/sec");
  const std::vector<std::size_t> thread_counts =
      quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 8};
  const std::vector<std::uint64_t> periods =
      quick ? std::vector<std::uint64_t>{0, 2}
            : std::vector<std::uint64_t>{0, 20, 2};
  for (const std::size_t threads : thread_counts) {
    for (const std::uint64_t period_ms : periods) {
      MetricsRegistry registry;
      const RunResult r =
          run_config(ring, pool, threads, period_ms, registry);
      const double per_sec =
          r.wall_ns == 0 ? 0.0
                         : static_cast<double>(r.lookups) * 1e9 /
                               static_cast<double>(r.wall_ns);
      std::printf("%8zu %14llu %10llu %8llu %14.0f\n", threads,
                  static_cast<unsigned long long>(period_ms),
                  static_cast<unsigned long long>(r.lookups),
                  static_cast<unsigned long long>(r.swaps), per_sec);
      report.add("serve_throughput",
                 {{"threads", threads},
                  {"swap_period_ms", period_ms},
                  {"lookups", r.lookups},
                  {"swaps", r.swaps},
                  {"lookups_per_sec", static_cast<std::uint64_t>(per_sec)}},
                 r.wall_ns, registry.snapshot());
    }
  }
  return report.write("BENCH_serve.json") ? 0 : 1;
}
