// Probes the Section 7.4 complexity claims: the construction algorithm is
// O((2n-1)^d) in the worst case, yet the worst case "is extremely unlikely
// to happen in practice".
//
// We measure FDD path counts and construction time for two rule
// geometries over a 3-field schema:
//   adversarial — every rule uses staggered, pairwise-straddling intervals
//                 on every field, maximising edge splitting;
//   realistic   — rules drawn from a bounded pool of aligned blocks, the
//                 geometry real policies exhibit.
// Expected shape: adversarial path counts hug the (2n-1)^d bound and grow
// superlinearly; realistic counts grow roughly linearly and stay orders of
// magnitude below the bound.

#include <cstdio>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "fdd/construct.hpp"
#include "fdd/stats.hpp"

namespace {

using namespace dfw;

Schema bench_schema() {
  return Schema({{"a", Interval(0, 4095), FieldKind::kInteger},
                 {"b", Interval(0, 4095), FieldKind::kInteger},
                 {"c", Interval(0, 4095), FieldKind::kInteger}});
}

// Staggered intervals: rule i spans [i*s, 2048 + i*s], so every pair of
// rules straddles on every field — the worst case of Theorem 1's proof.
Policy adversarial(std::size_t n) {
  const Schema schema = bench_schema();
  std::vector<Rule> rules;
  const Value step = 2048 / static_cast<Value>(n + 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Value lo = static_cast<Value>(i + 1) * step;
    const Interval iv(lo, lo + 2048);
    rules.emplace_back(schema,
                       std::vector<IntervalSet>{IntervalSet(iv),
                                                IntervalSet(iv),
                                                IntervalSet(iv)},
                       i % 2 == 0 ? kAccept : kDiscard);
  }
  rules.push_back(Rule::catch_all(schema, kDiscard));
  return Policy(schema, std::move(rules));
}

// Aligned 256-value blocks from a pool of 16: realistic reuse geometry.
Policy realistic(std::size_t n, std::mt19937_64& rng) {
  const Schema schema = bench_schema();
  std::uniform_int_distribution<Value> block(0, 15);
  std::uniform_int_distribution<int> coin(0, 3);
  std::vector<Rule> rules;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::vector<IntervalSet> conjuncts;
    for (int f = 0; f < 3; ++f) {
      if (coin(rng) == 0) {
        conjuncts.emplace_back(Interval(0, 4095));
      } else {
        const Value base = block(rng) * 256;
        conjuncts.emplace_back(Interval(base, base + 255));
      }
    }
    rules.emplace_back(schema, std::move(conjuncts),
                       coin(rng) < 2 ? kAccept : kDiscard);
  }
  rules.push_back(Rule::catch_all(schema, kDiscard));
  return Policy(schema, std::move(rules));
}

void measure(const char* label, const Policy& p) {
  using bench::time_ms;
  Fdd fdd = Fdd::constant(p.schema(), kAccept);
  const double build_ms = time_ms([&] { fdd = build_fdd(p); });
  const std::size_t bound = theorem1_path_bound(p.size(), 3);
  std::printf("%-12s %6zu %12zu %16zu %10.1f\n", label, p.size(),
              fdd.path_count(), bound, build_ms);
}

}  // namespace

int main() {
  std::printf("Section 7.4 — worst-case vs practical construction\n");
  std::printf("%-12s %6s %12s %16s %10s\n", "geometry", "rules", "paths",
              "theorem1-bound", "build(ms)");
  std::mt19937_64 rng(99);
  for (const std::size_t n : {4u, 8u, 16u, 32u}) {
    measure("adversarial", adversarial(n));
    measure("realistic", realistic(n, rng));
  }
  for (const std::size_t n : {128u, 512u}) {
    measure("realistic", realistic(n, rng));
  }
  std::printf(
      "\nexpectation (paper): adversarial geometry tracks the (2n-1)^d\n"
      "bound; realistic geometry stays near-linear and far below it.\n");
  return 0;
}
