// Google-benchmark micro suite over the library's hot paths: interval-set
// algebra, construction, shaping, comparison, generation, evaluation, and
// the BDD baseline's encoding. Complements the figure benches with
// steady-state per-operation costs.

#include <benchmark/benchmark.h>

#include "bdd/packet_encode.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/reduce.hpp"
#include "fdd/shape.hpp"
#include "fdd/simplify.hpp"
#include "engine/classifier.hpp"
#include "gen/generate.hpp"
#include "synth/synth.hpp"

namespace {

using namespace dfw;

Policy cached_policy(std::size_t n, std::uint64_t seed) {
  SynthConfig config;
  config.num_rules = n;
  Rng rng(seed);
  return synth_policy(config, rng);
}

void BM_IntervalSetSubtract(benchmark::State& state) {
  IntervalSet a;
  IntervalSet b;
  for (Value i = 0; i < 64; ++i) {
    a.add(Interval(i * 100, i * 100 + 60));
    b.add(Interval(i * 100 + 30, i * 100 + 90));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subtract(b));
  }
}
BENCHMARK(BM_IntervalSetSubtract);

void BM_IntervalSetIntersect(benchmark::State& state) {
  IntervalSet a;
  IntervalSet b;
  for (Value i = 0; i < 64; ++i) {
    a.add(Interval(i * 100, i * 100 + 60));
    b.add(Interval(i * 100 + 30, i * 100 + 90));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_IntervalSetIntersect);

void BM_ConstructReference(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_fdd(p));
  }
}
BENCHMARK(BM_ConstructReference)->Arg(50)->Arg(100)->Arg(200);

void BM_ConstructReduced(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_reduced_fdd(p));
  }
}
BENCHMARK(BM_ConstructReduced)->Arg(50)->Arg(200)->Arg(800);

void BM_ShapePair(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  const Fdd fa = build_reduced_fdd(pa);
  const Fdd fb = build_reduced_fdd(pb);
  for (auto _ : state) {
    Fdd a = fa.clone();
    Fdd b = fb.clone();
    shape_pair(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ShapePair)->Arg(100)->Arg(400);

void BM_CompareShaped(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  Fdd fa = build_reduced_fdd(pa);
  Fdd fb = build_reduced_fdd(pb);
  shape_pair(fa, fb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compare_fdds(fa, fb));
  }
}
BENCHMARK(BM_CompareShaped)->Arg(100)->Arg(400);

void BM_EndToEndDiscrepancies(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(discrepancies(pa, pb));
  }
}
BENCHMARK(BM_EndToEndDiscrepancies)->Arg(42)->Arg(200)->Arg(661);

void BM_EvaluatePolicy(benchmark::State& state) {
  const Policy p = cached_policy(661, 7);
  const Packet pkt = {0x0a000001, 0x0a010005, 40000, 443, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.evaluate(pkt));
  }
}
BENCHMARK(BM_EvaluatePolicy);

void BM_ClassifyCompiled(benchmark::State& state) {
  const Policy p = cached_policy(661, 7);
  const Classifier c = Classifier::compile(p);
  const Packet pkt = {0x0a000001, 0x0a010005, 40000, 443, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.classify(pkt));
  }
}
BENCHMARK(BM_ClassifyCompiled);

void BM_CompileClassifier(benchmark::State& state) {
  const Policy p = cached_policy(200, 7);
  const Fdd fdd = build_reduced_fdd(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Classifier::compile(fdd));
  }
}
BENCHMARK(BM_CompileClassifier);

void BM_EvaluateFdd(benchmark::State& state) {
  const Policy p = cached_policy(661, 7);
  const Fdd fdd = build_reduced_fdd(p);
  const Packet pkt = {0x0a000001, 0x0a010005, 40000, 443, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fdd.evaluate(pkt));
  }
}
BENCHMARK(BM_EvaluateFdd);

void BM_GeneratePolicy(benchmark::State& state) {
  const Policy p = cached_policy(200, 7);
  const Fdd fdd = build_reduced_fdd(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_policy(fdd));
  }
}
BENCHMARK(BM_GeneratePolicy);

void BM_ReduceFdd(benchmark::State& state) {
  const Policy p = cached_policy(200, 7);
  const Fdd fdd = build_fdd(p);
  for (auto _ : state) {
    Fdd copy = fdd.clone();
    reduce(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ReduceFdd);

void BM_MakeSimple(benchmark::State& state) {
  const Policy p = cached_policy(100, 7);
  const Fdd fdd = build_reduced_fdd(p);
  for (auto _ : state) {
    Fdd copy = fdd.clone();
    make_simple(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_MakeSimple);

void BM_BddEncodePolicy(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  const BitLayout layout = layout_for(p.schema());
  for (auto _ : state) {
    BddManager mgr(layout.total_bits);
    benchmark::DoNotOptimize(encode_policy(mgr, layout, p));
  }
}
BENCHMARK(BM_BddEncodePolicy)->Arg(10)->Arg(40);

}  // namespace
