// Google-benchmark micro suite over the library's hot paths: interval-set
// algebra, construction, shaping, comparison, generation, evaluation, and
// the BDD baseline's encoding. Complements the figure benches with
// steady-state per-operation costs.
//
// The binary also owns the arena-vs-tree sweep: a custom main() first runs
// the construct/shape/compare pipeline on both representations across
// policy sizes, asserts their discrepancy outputs are identical, and
// writes node counts, sharing factors, and wall times to
// BENCH_fdd_arena.json, then hands over to google-benchmark. Pass
// --skip-arena-sweep to go straight to the micro benchmarks.
//
// Pass --trace[=FILE] for the observability smoke session instead of
// benchmarks: an instrumented end-to-end discrepancies + generate run that
// writes a Chrome trace (default trace.json), self-validates it, checks
// the instrumented outputs are byte-identical to uninstrumented runs, and
// writes the per-phase timing records to BENCH_obs.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bdd/packet_encode.hpp"
#include "bench_common.hpp"
#include "fdd/arena.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/node.hpp"
#include "fdd/reduce.hpp"
#include "fdd/shape.hpp"
#include "fdd/simplify.hpp"
#include "engine/classifier.hpp"
#include "gen/generate.hpp"
#include "obs/obs.hpp"
#include "synth/synth.hpp"

namespace {

using namespace dfw;

Policy cached_policy(std::size_t n, std::uint64_t seed) {
  SynthConfig config;
  config.num_rules = n;
  Rng rng(seed);
  return synth_policy(config, rng);
}

void BM_IntervalSetSubtract(benchmark::State& state) {
  IntervalSet a;
  IntervalSet b;
  for (Value i = 0; i < 64; ++i) {
    a.add(Interval(i * 100, i * 100 + 60));
    b.add(Interval(i * 100 + 30, i * 100 + 90));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subtract(b));
  }
}
BENCHMARK(BM_IntervalSetSubtract);

void BM_IntervalSetIntersect(benchmark::State& state) {
  IntervalSet a;
  IntervalSet b;
  for (Value i = 0; i < 64; ++i) {
    a.add(Interval(i * 100, i * 100 + 60));
    b.add(Interval(i * 100 + 30, i * 100 + 90));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_IntervalSetIntersect);

void BM_ConstructReference(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_fdd(p));
  }
}
BENCHMARK(BM_ConstructReference)->Arg(50)->Arg(100)->Arg(200);

void BM_ConstructReduced(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  ConstructOptions options;
  options.use_arena = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_reduced_fdd(p, options));
  }
}
BENCHMARK(BM_ConstructReduced)->Arg(50)->Arg(200)->Arg(800);

void BM_ConstructArena(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    FddArena arena(p.schema());
    benchmark::DoNotOptimize(arena.build_reduced(p));
  }
}
BENCHMARK(BM_ConstructArena)->Arg(50)->Arg(200)->Arg(800);

void BM_ShapePair(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  const Fdd fa = build_reduced_fdd(pa);
  const Fdd fb = build_reduced_fdd(pb);
  for (auto _ : state) {
    Fdd a = fa.clone();
    Fdd b = fb.clone();
    shape_pair(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ShapePair)->Arg(100)->Arg(400);

void BM_CompareShaped(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  Fdd fa = build_reduced_fdd(pa);
  Fdd fb = build_reduced_fdd(pb);
  shape_pair(fa, fb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compare_fdds(fa, fb));
  }
}
BENCHMARK(BM_CompareShaped)->Arg(100)->Arg(400);

void BM_EndToEndDiscrepancies(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  CompareOptions options;
  options.use_arena = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(discrepancies(pa, pb, options));
  }
}
BENCHMARK(BM_EndToEndDiscrepancies)->Arg(42)->Arg(200)->Arg(661);

void BM_EndToEndDiscrepanciesArena(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  CompareOptions options;
  options.use_arena = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(discrepancies(pa, pb, options));
  }
}
BENCHMARK(BM_EndToEndDiscrepanciesArena)->Arg(42)->Arg(200)->Arg(661);

void BM_EvaluatePolicy(benchmark::State& state) {
  const Policy p = cached_policy(661, 7);
  const Packet pkt = {0x0a000001, 0x0a010005, 40000, 443, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.evaluate(pkt));
  }
}
BENCHMARK(BM_EvaluatePolicy);

void BM_ClassifyCompiled(benchmark::State& state) {
  const Policy p = cached_policy(661, 7);
  const Classifier c = Classifier::compile(p);
  const Packet pkt = {0x0a000001, 0x0a010005, 40000, 443, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.classify(pkt));
  }
}
BENCHMARK(BM_ClassifyCompiled);

void BM_CompileClassifier(benchmark::State& state) {
  const Policy p = cached_policy(200, 7);
  const Fdd fdd = build_reduced_fdd(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Classifier::compile(fdd));
  }
}
BENCHMARK(BM_CompileClassifier);

void BM_EvaluateFdd(benchmark::State& state) {
  const Policy p = cached_policy(661, 7);
  const Fdd fdd = build_reduced_fdd(p);
  const Packet pkt = {0x0a000001, 0x0a010005, 40000, 443, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fdd.evaluate(pkt));
  }
}
BENCHMARK(BM_EvaluateFdd);

void BM_GeneratePolicy(benchmark::State& state) {
  const Policy p = cached_policy(200, 7);
  const Fdd fdd = build_reduced_fdd(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_policy(fdd));
  }
}
BENCHMARK(BM_GeneratePolicy);

void BM_ReduceFdd(benchmark::State& state) {
  const Policy p = cached_policy(200, 7);
  const Fdd fdd = build_fdd(p);
  for (auto _ : state) {
    Fdd copy = fdd.clone();
    reduce(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ReduceFdd);

void BM_MakeSimple(benchmark::State& state) {
  const Policy p = cached_policy(100, 7);
  const Fdd fdd = build_reduced_fdd(p);
  for (auto _ : state) {
    Fdd copy = fdd.clone();
    make_simple(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_MakeSimple);

void BM_BddEncodePolicy(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  const BitLayout layout = layout_for(p.schema());
  for (auto _ : state) {
    BddManager mgr(layout.total_bits);
    benchmark::DoNotOptimize(encode_policy(mgr, layout, p));
  }
}
BENCHMARK(BM_BddEncodePolicy)->Arg(10)->Arg(40);

// -- Arena-vs-tree sweep -----------------------------------------------------
//
// The whole pairwise pipeline (construct -> validate -> shape -> compare)
// run on both representations. FddNode allocations are counted through the
// tree factories' global counter; the arena's analog is the number of
// nodes it materialises. sharing_factor = tree allocations / arena unique
// nodes, the size advantage hash-consing buys on the identical workload.
bool arena_sweep() {
  std::FILE* json = std::fopen("BENCH_fdd_arena.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_fdd_arena.json for writing\n");
    return false;
  }
  std::printf(
      "arena-vs-tree pipeline sweep (pairwise discrepancies, seeds 7/8)\n");
  std::printf("%7s %10s %11s %9s %12s %12s %9s %6s\n", "rules", "tree(ms)",
              "arena(ms)", "speedup", "tree-nodes", "arena-nodes", "sharing",
              "equal");
  std::fprintf(json, "{\n  \"bench\": \"fdd_arena\",\n  \"sweep\": [");
  bool all_identical = true;
  bool first = true;
  for (const std::size_t n : {500u, 1000u, 2000u, 4000u}) {
    const Policy pa = cached_policy(n, 7);
    const Policy pb = cached_policy(n, 8);
    CompareOptions tree_options;
    tree_options.use_arena = false;
    CompareOptions arena_options;
    arena_options.use_arena = true;

    const std::size_t alloc_before = fdd_node_allocations();
    std::vector<Discrepancy> tree_out;
    const double tree_ms =
        bench::time_ms([&] { tree_out = discrepancies(pa, pb, tree_options); });
    const std::size_t tree_nodes = fdd_node_allocations() - alloc_before;

    std::vector<Discrepancy> arena_out;
    const double arena_ms = bench::time_ms(
        [&] { arena_out = discrepancies(pa, pb, arena_options); });

    // Untimed stats pass: same pipeline, arena kept alive for counters.
    FddArena arena(pa.schema());
    std::vector<ArenaNodeId> roots{arena.build_reduced(pa),
                                   arena.build_reduced(pb)};
    for (const ArenaNodeId root : roots) {
      arena.validate(root);
    }
    arena.shape_all(roots);
    (void)arena.compare(roots);
    const std::size_t arena_nodes = arena.unique_node_count();
    const double sharing =
        arena_nodes == 0 ? 0.0
                         : static_cast<double>(tree_nodes) /
                               static_cast<double>(arena_nodes);

    const bool identical = arena_out == tree_out;
    all_identical = all_identical && identical;
    std::printf("%7zu %10.1f %11.1f %8.2fx %12zu %12zu %8.1fx %6s\n", n,
                tree_ms, arena_ms, tree_ms / arena_ms, tree_nodes,
                arena_nodes, sharing, identical ? "yes" : "NO");
    std::fflush(stdout);
    std::fprintf(json,
                 "%s\n    {\"rules\": %zu, \"tree_ms\": %.3f, "
                 "\"arena_ms\": %.3f, \"speedup\": %.3f, "
                 "\"tree_nodes_allocated\": %zu, \"arena_unique_nodes\": %zu, "
                 "\"sharing_factor\": %.3f, \"discrepancies\": %zu, "
                 "\"identical\": %s}",
                 first ? "" : ",", n, tree_ms, arena_ms, tree_ms / arena_ms,
                 tree_nodes, arena_nodes, sharing, arena_out.size(),
                 identical ? "true" : "false");
    first = false;
  }
  std::fprintf(json, "\n  ],\n  \"identical\": %s\n}\n",
               all_identical ? "true" : "false");
  std::fclose(json);
  std::printf("wrote BENCH_fdd_arena.json\n\n");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: arena and tree pipelines disagree on discrepancies\n");
  }
  return all_identical;
}

// -- Observability smoke session ---------------------------------------------
//
// One instrumented end-to-end run of the library's two headline pipelines
// (discrepancies on 200-rule seeds 7/8; generate on the seed-7 diagram),
// exported as a Chrome trace and as dfw-bench-obs-v1 records. The session
// is its own validator: the trace must round-trip through
// validate_chrome_trace with every expected phase present, and the
// instrumented outputs must be byte-identical to uninstrumented runs.
bool obs_session(const char* trace_path) {
  const Policy pa = cached_policy(200, 7);
  const Policy pb = cached_policy(200, 8);

  Tracer tracer;
  MetricsRegistry registry;
  CompareOptions options;
  options.run.obs = ObsOptions{&tracer, &registry};
  GenerateOptions gen_options;
  gen_options.run.obs = options.run.obs;

  std::vector<Discrepancy> diffs;
  const std::uint64_t compare_ns =
      bench::time_ns([&] { diffs = discrepancies(pa, pb, options); });
  const Fdd fdd = build_reduced_fdd(pa);
  const auto gen_start = bench::Clock::now();
  const Policy regenerated = generate_policy(fdd, gen_options);
  const std::uint64_t generate_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          bench::Clock::now() - gen_start)
          .count());

  // Null sink must not change any output.
  if (diffs != discrepancies(pa, pb) ||
      regenerated.rules() != generate_policy(fdd).rules()) {
    std::fprintf(stderr, "FAIL: instrumented outputs differ from plain runs\n");
    return false;
  }

  const std::string trace = tracer.chrome_trace_json();
  std::FILE* f = std::fopen(trace_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
    return false;
  }
  std::fwrite(trace.data(), 1, trace.size(), f);
  std::fclose(f);

  const TraceValidation validation = validate_chrome_trace(trace);
  if (!validation.ok) {
    std::fprintf(stderr, "FAIL: invalid trace: %s\n",
                 validation.error.c_str());
    return false;
  }
  for (const char* required :
       {"construct", "validate", "shape", "compare", "generate",
        "build_reduced_fdd"}) {
    if (validation.name_counts.count(required) == 0) {
      std::fprintf(stderr, "FAIL: trace has no \"%s\" span\n", required);
      return false;
    }
  }

  bench::ObsReport report("bench_micro");
  const MetricsSnapshot snapshot = registry.snapshot();
  report.add("discrepancies_traced",
             {{"rules", 200}, {"seed_a", 7}, {"seed_b", 8}}, compare_ns,
             snapshot);
  report.add("generate_traced", {{"rules", 200}, {"seed", 7}}, generate_ns,
             snapshot);
  if (!report.write("BENCH_obs.json")) {
    return false;
  }

  std::printf("obs smoke: %zu discrepancies, %zu rules regenerated\n",
              diffs.size(), regenerated.size());
  std::printf("%-28s %12s %8s\n", "phase", "total(ns)", "spans");
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name.rfind("phase.", 0) == 0) {
      std::printf("%-28s %12llu %8llu\n", name.c_str(),
                  static_cast<unsigned long long>(hist.sum),
                  static_cast<unsigned long long>(hist.count));
    }
  }
  std::printf("wrote %s (%zu events, %zu threads) and BENCH_obs.json\n",
              trace_path, validation.events, validation.threads);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool skip_sweep = false;
  const char* trace_path = nullptr;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-arena-sweep") == 0) {
      skip_sweep = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = "trace.json";
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (trace_path != nullptr) {
    return obs_session(trace_path) ? 0 : 1;
  }
  if (!skip_sweep && !arena_sweep()) {
    return 1;
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
