// Google-benchmark micro suite over the library's hot paths: interval-set
// algebra, construction, shaping, comparison, generation, evaluation, and
// the BDD baseline's encoding. Complements the figure benches with
// steady-state per-operation costs.
//
// The binary also owns the arena-vs-tree sweep: a custom main() first runs
// the construct/shape/compare pipeline on both representations across
// policy sizes, asserts their discrepancy outputs are identical, and
// writes node counts, sharing factors, and wall times to
// BENCH_fdd_arena.json, then hands over to google-benchmark. Pass
// --skip-arena-sweep to go straight to the micro benchmarks.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "bdd/packet_encode.hpp"
#include "bench_common.hpp"
#include "fdd/arena.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/node.hpp"
#include "fdd/reduce.hpp"
#include "fdd/shape.hpp"
#include "fdd/simplify.hpp"
#include "engine/classifier.hpp"
#include "gen/generate.hpp"
#include "synth/synth.hpp"

namespace {

using namespace dfw;

Policy cached_policy(std::size_t n, std::uint64_t seed) {
  SynthConfig config;
  config.num_rules = n;
  Rng rng(seed);
  return synth_policy(config, rng);
}

void BM_IntervalSetSubtract(benchmark::State& state) {
  IntervalSet a;
  IntervalSet b;
  for (Value i = 0; i < 64; ++i) {
    a.add(Interval(i * 100, i * 100 + 60));
    b.add(Interval(i * 100 + 30, i * 100 + 90));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subtract(b));
  }
}
BENCHMARK(BM_IntervalSetSubtract);

void BM_IntervalSetIntersect(benchmark::State& state) {
  IntervalSet a;
  IntervalSet b;
  for (Value i = 0; i < 64; ++i) {
    a.add(Interval(i * 100, i * 100 + 60));
    b.add(Interval(i * 100 + 30, i * 100 + 90));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_IntervalSetIntersect);

void BM_ConstructReference(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_fdd(p));
  }
}
BENCHMARK(BM_ConstructReference)->Arg(50)->Arg(100)->Arg(200);

void BM_ConstructReduced(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  ConstructOptions options;
  options.use_arena = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_reduced_fdd(p, options));
  }
}
BENCHMARK(BM_ConstructReduced)->Arg(50)->Arg(200)->Arg(800);

void BM_ConstructArena(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    FddArena arena(p.schema());
    benchmark::DoNotOptimize(arena.build_reduced(p));
  }
}
BENCHMARK(BM_ConstructArena)->Arg(50)->Arg(200)->Arg(800);

void BM_ShapePair(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  const Fdd fa = build_reduced_fdd(pa);
  const Fdd fb = build_reduced_fdd(pb);
  for (auto _ : state) {
    Fdd a = fa.clone();
    Fdd b = fb.clone();
    shape_pair(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ShapePair)->Arg(100)->Arg(400);

void BM_CompareShaped(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  Fdd fa = build_reduced_fdd(pa);
  Fdd fb = build_reduced_fdd(pb);
  shape_pair(fa, fb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compare_fdds(fa, fb));
  }
}
BENCHMARK(BM_CompareShaped)->Arg(100)->Arg(400);

void BM_EndToEndDiscrepancies(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  CompareOptions options;
  options.use_arena = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(discrepancies(pa, pb, options));
  }
}
BENCHMARK(BM_EndToEndDiscrepancies)->Arg(42)->Arg(200)->Arg(661);

void BM_EndToEndDiscrepanciesArena(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Policy pa = cached_policy(n, 7);
  const Policy pb = cached_policy(n, 8);
  CompareOptions options;
  options.use_arena = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(discrepancies(pa, pb, options));
  }
}
BENCHMARK(BM_EndToEndDiscrepanciesArena)->Arg(42)->Arg(200)->Arg(661);

void BM_EvaluatePolicy(benchmark::State& state) {
  const Policy p = cached_policy(661, 7);
  const Packet pkt = {0x0a000001, 0x0a010005, 40000, 443, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.evaluate(pkt));
  }
}
BENCHMARK(BM_EvaluatePolicy);

void BM_ClassifyCompiled(benchmark::State& state) {
  const Policy p = cached_policy(661, 7);
  const Classifier c = Classifier::compile(p);
  const Packet pkt = {0x0a000001, 0x0a010005, 40000, 443, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.classify(pkt));
  }
}
BENCHMARK(BM_ClassifyCompiled);

void BM_CompileClassifier(benchmark::State& state) {
  const Policy p = cached_policy(200, 7);
  const Fdd fdd = build_reduced_fdd(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Classifier::compile(fdd));
  }
}
BENCHMARK(BM_CompileClassifier);

void BM_EvaluateFdd(benchmark::State& state) {
  const Policy p = cached_policy(661, 7);
  const Fdd fdd = build_reduced_fdd(p);
  const Packet pkt = {0x0a000001, 0x0a010005, 40000, 443, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fdd.evaluate(pkt));
  }
}
BENCHMARK(BM_EvaluateFdd);

void BM_GeneratePolicy(benchmark::State& state) {
  const Policy p = cached_policy(200, 7);
  const Fdd fdd = build_reduced_fdd(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_policy(fdd));
  }
}
BENCHMARK(BM_GeneratePolicy);

void BM_ReduceFdd(benchmark::State& state) {
  const Policy p = cached_policy(200, 7);
  const Fdd fdd = build_fdd(p);
  for (auto _ : state) {
    Fdd copy = fdd.clone();
    reduce(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ReduceFdd);

void BM_MakeSimple(benchmark::State& state) {
  const Policy p = cached_policy(100, 7);
  const Fdd fdd = build_reduced_fdd(p);
  for (auto _ : state) {
    Fdd copy = fdd.clone();
    make_simple(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_MakeSimple);

void BM_BddEncodePolicy(benchmark::State& state) {
  const Policy p = cached_policy(static_cast<std::size_t>(state.range(0)), 7);
  const BitLayout layout = layout_for(p.schema());
  for (auto _ : state) {
    BddManager mgr(layout.total_bits);
    benchmark::DoNotOptimize(encode_policy(mgr, layout, p));
  }
}
BENCHMARK(BM_BddEncodePolicy)->Arg(10)->Arg(40);

// -- Arena-vs-tree sweep -----------------------------------------------------
//
// The whole pairwise pipeline (construct -> validate -> shape -> compare)
// run on both representations. FddNode allocations are counted through the
// tree factories' global counter; the arena's analog is the number of
// nodes it materialises. sharing_factor = tree allocations / arena unique
// nodes, the size advantage hash-consing buys on the identical workload.
bool arena_sweep() {
  std::FILE* json = std::fopen("BENCH_fdd_arena.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_fdd_arena.json for writing\n");
    return false;
  }
  std::printf(
      "arena-vs-tree pipeline sweep (pairwise discrepancies, seeds 7/8)\n");
  std::printf("%7s %10s %11s %9s %12s %12s %9s %6s\n", "rules", "tree(ms)",
              "arena(ms)", "speedup", "tree-nodes", "arena-nodes", "sharing",
              "equal");
  std::fprintf(json, "{\n  \"bench\": \"fdd_arena\",\n  \"sweep\": [");
  bool all_identical = true;
  bool first = true;
  for (const std::size_t n : {500u, 1000u, 2000u, 4000u}) {
    const Policy pa = cached_policy(n, 7);
    const Policy pb = cached_policy(n, 8);
    CompareOptions tree_options;
    tree_options.use_arena = false;
    CompareOptions arena_options;
    arena_options.use_arena = true;

    const std::size_t alloc_before = fdd_node_allocations();
    std::vector<Discrepancy> tree_out;
    const double tree_ms =
        bench::time_ms([&] { tree_out = discrepancies(pa, pb, tree_options); });
    const std::size_t tree_nodes = fdd_node_allocations() - alloc_before;

    std::vector<Discrepancy> arena_out;
    const double arena_ms = bench::time_ms(
        [&] { arena_out = discrepancies(pa, pb, arena_options); });

    // Untimed stats pass: same pipeline, arena kept alive for counters.
    FddArena arena(pa.schema());
    std::vector<ArenaNodeId> roots{arena.build_reduced(pa),
                                   arena.build_reduced(pb)};
    for (const ArenaNodeId root : roots) {
      arena.validate(root);
    }
    arena.shape_all(roots);
    (void)arena.compare(roots);
    const std::size_t arena_nodes = arena.unique_node_count();
    const double sharing =
        arena_nodes == 0 ? 0.0
                         : static_cast<double>(tree_nodes) /
                               static_cast<double>(arena_nodes);

    const bool identical = arena_out == tree_out;
    all_identical = all_identical && identical;
    std::printf("%7zu %10.1f %11.1f %8.2fx %12zu %12zu %8.1fx %6s\n", n,
                tree_ms, arena_ms, tree_ms / arena_ms, tree_nodes,
                arena_nodes, sharing, identical ? "yes" : "NO");
    std::fflush(stdout);
    std::fprintf(json,
                 "%s\n    {\"rules\": %zu, \"tree_ms\": %.3f, "
                 "\"arena_ms\": %.3f, \"speedup\": %.3f, "
                 "\"tree_nodes_allocated\": %zu, \"arena_unique_nodes\": %zu, "
                 "\"sharing_factor\": %.3f, \"discrepancies\": %zu, "
                 "\"identical\": %s}",
                 first ? "" : ",", n, tree_ms, arena_ms, tree_ms / arena_ms,
                 tree_nodes, arena_nodes, sharing, arena_out.size(),
                 identical ? "true" : "false");
    first = false;
  }
  std::fprintf(json, "\n  ],\n  \"identical\": %s\n}\n",
               all_identical ? "true" : "false");
  std::fclose(json);
  std::printf("wrote BENCH_fdd_arena.json\n\n");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: arena and tree pipelines disagree on discrepancies\n");
  }
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  bool skip_sweep = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-arena-sweep") == 0) {
      skip_sweep = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!skip_sweep && !arena_sweep()) {
    return 1;
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
