// Reproduces Fig. 12: runtime of the three algorithms on "real-life"
// firewalls under the Section 8.2.1 perturbation model.
//
// The paper used a confidential 661-rule university firewall and a 42-rule
// average-size firewall; our stand-ins are synthetic policies of the same
// sizes drawn from the real-life geometry distributions (see DESIGN.md,
// substitutions). Protocol per the paper: select x% of the rules, flip the
// decisions of a random y% portion of the selection (y ~ U[0,100]), delete
// the rest of the selection, then compare original vs perturbed. x sweeps
// 5..50; the paper ran 100 random trials per point.
//
// Expected shape: runtimes are near-flat in x (comparing two similar
// firewalls is cheap and gets slightly cheaper as rules are deleted), the
// 661-rule firewall costs well under a second per comparison, the 42-rule
// one is millisecond-scale.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/shape.hpp"
#include "synth/synth.hpp"

namespace {

void run_series(const char* label, std::size_t rules, int trials) {
  using namespace dfw;
  using bench::time_ms;

  std::printf("Fig. 12 — %s stand-in (%zu rules, %d trials/point)\n", label,
              rules, trials);
  std::printf("%6s %14s %12s %14s %10s %8s\n", "x(%)", "construct(ms)",
              "shape(ms)", "compare(ms)", "total(ms)", "diffs");
  SynthConfig config;
  config.num_rules = rules;
  Rng gen_rng(rules);
  const Policy original = synth_policy(config, gen_rng);

  for (int x = 5; x <= 50; x += 5) {
    double construct_total = 0;
    double shape_total = 0;
    double compare_total = 0;
    std::size_t diffs_total = 0;
    Rng rng(10'000 * rules + static_cast<std::size_t>(x));
    for (int trial = 0; trial < trials; ++trial) {
      const Policy perturbed =
          perturb_policy(original, static_cast<double>(x), rng);
      Fdd fa = Fdd::constant(original.schema(), kAccept);
      Fdd fb = Fdd::constant(original.schema(), kAccept);
      construct_total += time_ms([&] {
        fa = build_reduced_fdd(original);
        fb = build_reduced_fdd(perturbed);
      });
      shape_total += time_ms([&] { shape_pair(fa, fb); });
      std::vector<Discrepancy> diffs;
      compare_total += time_ms([&] { diffs = compare_fdds(fa, fb); });
      diffs_total += diffs.size();
    }
    std::printf("%6d %14.1f %12.1f %14.1f %10.1f %8zu\n", x,
                construct_total / trials, shape_total / trials,
                compare_total / trials,
                (construct_total + shape_total + compare_total) / trials,
                diffs_total / static_cast<std::size_t>(trials));
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  run_series("large real-life firewall", 661, 10);
  run_series("average real-life firewall", 42, 50);
  std::printf(
      "expectation (paper): milliseconds for the 42-rule firewall, on the\n"
      "order of a second for the 661-rule one; construction dominates and\n"
      "runtime varies only mildly with x because the compared firewalls\n"
      "stay similar.\n");
  return 0;
}
