// Reproduces Fig. 13: average execution time of the construction, shaping,
// and comparison algorithms versus the number of rules, on pairs of
// *independently generated* synthetic firewalls (Section 8.2.2).
//
// Paper reference points (Java 1.4, Sun Blade 2000, 1 GHz): total under
// 5 seconds at 3,000 rules, construction dominating, all three curves
// growing roughly polynomially but gently. Absolute numbers differ on
// modern hardware; the shape — construction >> shaping > comparison,
// total in seconds at 3,000 rules — is the reproduction target. We report
// medians over the trials alongside means: independent random firewalls
// occasionally draw an overlap-heavy geometry whose FDD is much larger
// (the Theorem 1 tail), and the median tracks the typical case the
// paper's curves show.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/shape.hpp"
#include "synth/synth.hpp"

namespace {

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double mean(const std::vector<double>& values) {
  double total = 0;
  for (const double v : values) {
    total += v;
  }
  return total / static_cast<double>(values.size());
}

}  // namespace

int main() {
  using namespace dfw;
  using bench::time_ms;

  const std::vector<std::size_t> sizes = {200,  500,  1000, 1500,
                                          2000, 2500, 3000};
  constexpr int kTrials = 5;

  std::printf("Fig. 13 — synthetic firewalls, independent pairs (%d trials,"
              " median / mean)\n",
              kTrials);
  std::printf("%8s %20s %16s %18s %16s\n", "rules", "construct(ms)",
              "shape(ms)", "compare(ms)", "total(ms)");
  for (const std::size_t n : sizes) {
    std::vector<double> construct_ms;
    std::vector<double> shape_ms;
    std::vector<double> compare_ms;
    std::vector<double> total_ms;
    for (int trial = 0; trial < kTrials; ++trial) {
      SynthConfig config;
      config.num_rules = n;
      Rng rng(1000 * n + static_cast<std::size_t>(trial));
      const Policy pa = synth_policy(config, rng);
      const Policy pb = synth_policy(config, rng);

      Fdd fa = Fdd::constant(pa.schema(), kAccept);
      Fdd fb = Fdd::constant(pb.schema(), kAccept);
      const double c = time_ms([&] {
        fa = build_reduced_fdd(pa);
        fb = build_reduced_fdd(pb);
      });
      const double s = time_ms([&] { shape_pair(fa, fb); });
      std::vector<Discrepancy> diffs;
      const double m = time_ms([&] { diffs = compare_fdds(fa, fb); });
      construct_ms.push_back(c);
      shape_ms.push_back(s);
      compare_ms.push_back(m);
      total_ms.push_back(c + s + m);
    }
    std::printf("%8zu %10.1f / %7.1f %8.1f / %5.1f %9.1f / %6.1f %8.1f / %7.1f\n",
                n, median(construct_ms), mean(construct_ms),
                median(shape_ms), mean(shape_ms), median(compare_ms),
                mean(compare_ms), median(total_ms), mean(total_ms));
    std::fflush(stdout);
  }
  std::printf(
      "\nexpectation (paper): total < ~5 s at 3,000 rules; construction\n"
      "dominates; shaping and comparison are minor terms.\n");
  return 0;
}
