// Ablation benchmarks for the implementation choices DESIGN.md calls out:
//
//   A. interleaved reduction in construction (build_reduced_fdd) versus
//      the paper-literal build_fdd followed by one reduce;
//   B. fragment-merged shaping (shape_pair) versus the paper-literal
//      simple-FDD shaping (shape_pair_simple);
//   C. the address-pool realism knob of the synthetic generator (bounded
//      address reuse) versus near-independent addresses.
//
// Expected shape: A and B each cut time and peak diagram size by one or
// more orders of magnitude on similar policies while producing the same
// discrepancy semantics. C probes what drives FDD size: it peaks at
// *intermediate* reuse, where partially-overlapping subnets interact —
// heavy reuse collapses into few distinct regions and near-zero reuse
// makes rules disjoint, and both extremes stay small. Real configurations
// live near the favourable ends, which is Section 7.4's point.

#include <cstdio>

#include "bench_common.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/reduce.hpp"
#include "fdd/shape.hpp"
#include "synth/synth.hpp"

namespace {

using namespace dfw;
using bench::time_ms;

void ablation_reduction() {
  std::printf("A. construction: interleaved reduction vs build-then-reduce\n");
  std::printf("%8s %18s %14s %18s %14s\n", "rules", "interleaved(ms)",
              "paths", "build+reduce(ms)", "peak-paths");
  for (const std::size_t n : {100u, 200u, 400u}) {
    SynthConfig config;
    config.num_rules = n;
    Rng rng(n);
    const Policy p = synth_policy(config, rng);

    Fdd interleaved = Fdd::constant(p.schema(), kAccept);
    const double t_inter = time_ms([&] { interleaved = build_reduced_fdd(p); });

    Fdd late = Fdd::constant(p.schema(), kAccept);
    std::size_t peak = 0;
    const double t_late = time_ms([&] {
      late = build_fdd(p);
      peak = late.path_count();
      reduce(late);
    });
    std::printf("%8zu %18.1f %14zu %18.1f %14zu\n", n, t_inter,
                interleaved.path_count(), t_late, peak);
    std::fflush(stdout);
  }
  std::printf("\n");
}

void ablation_shaping() {
  std::printf("B. shaping: fragment-merged vs paper-literal simple FDDs\n");
  std::printf("%8s %6s %12s %12s %14s %14s\n", "rules", "x(%)", "merged(ms)",
              "simple(ms)", "merged-paths", "simple-paths");
  for (const std::size_t n : {50u, 100u, 200u}) {
    for (const double x : {10.0, 40.0}) {
      SynthConfig config;
      config.num_rules = n;
      Rng rng(100 * n + static_cast<std::size_t>(x));
      const Policy pa = synth_policy(config, rng);
      const Policy pb = perturb_policy(pa, x, rng);

      Fdd ma = build_reduced_fdd(pa);
      Fdd mb = build_reduced_fdd(pb);
      const double t_merged = time_ms([&] { shape_pair(ma, mb); });

      Fdd sa = build_reduced_fdd(pa);
      Fdd sb = build_reduced_fdd(pb);
      const double t_simple = time_ms([&] { shape_pair_simple(sa, sb); });

      std::printf("%8zu %6.0f %12.1f %12.1f %14zu %14zu\n", n, x, t_merged,
                  t_simple, ma.path_count(), sa.path_count());
      std::fflush(stdout);
    }
  }
  std::printf("\n");
}

void ablation_pool() {
  // Decision mix pinned to 50/50 so the address-reuse variable is
  // isolated: an accept-heavy mix (the realistic default) independently
  // shrinks the number of distinct decision regions and masks the effect.
  std::printf("C. synthetic realism: address-pool size vs FDD size "
              "(50/50 decisions)\n");
  std::printf("%8s %10s %14s %16s\n", "rules", "pool", "fdd-paths",
              "construct(ms)");
  const std::size_t n = 300;
  for (const std::size_t pool : {8u, 17u, 64u, 256u}) {
    SynthConfig config;
    config.num_rules = n;
    config.address_pool_size = pool;
    config.accept_weight = 50;
    Rng rng(pool);
    const Policy p = synth_policy(config, rng);
    Fdd fdd = Fdd::constant(p.schema(), kAccept);
    const double t = time_ms([&] { fdd = build_reduced_fdd(p); });
    std::printf("%8zu %10zu %14zu %16.1f\n", n, pool, fdd.path_count(), t);
    std::fflush(stdout);
  }
  std::printf("\n(pool 17 is the automatic sqrt-of-rules default at 300 "
              "rules)\n");
}

}  // namespace

int main() {
  ablation_reduction();
  ablation_shaping();
  ablation_pool();
  return 0;
}
