// N-team comparison benchmark (Section 7.3): the paper offers two ways to
// compare N > 2 firewalls — cross comparison (all N(N-1)/2 pairs through
// the pairwise pipeline) and direct comparison (shape all N diagrams to a
// common refinement once, then one lockstep walk). This bench measures
// both on N perturbed variants of one policy, the diverse-design setting.
//
// Expected shape: cross comparison pays the construction cost per pair
// and grows quadratically in N; direct comparison constructs each diagram
// once and grows near-linearly, winning clearly by N = 4.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "diverse/workflow.hpp"
#include "synth/synth.hpp"

int main() {
  using namespace dfw;
  using bench::time_ms;

  constexpr std::size_t kRules = 200;
  std::printf("Section 7.3 — N-team comparison, %zu-rule policies\n",
              kRules);
  std::printf("%6s %12s %14s %14s %12s\n", "teams", "direct(ms)",
              "cross(ms)", "direct-diffs", "cross-pairs");

  for (const std::size_t teams : {2u, 3u, 4u, 6u, 8u}) {
    SynthConfig config;
    config.num_rules = kRules;
    Rng rng(teams);
    const Policy base = synth_policy(config, rng);
    DiverseDesign session((DecisionSet()));
    session.submit("t0", base);
    for (std::size_t i = 1; i < teams; ++i) {
      session.submit("t" + std::to_string(i),
                     perturb_policy(base, 15.0, rng));
    }
    std::vector<Discrepancy> direct;
    const double direct_ms = time_ms([&] { direct = session.compare(); });
    std::vector<PairwiseReport> cross;
    const double cross_ms = time_ms([&] { cross = session.cross_compare(); });
    std::printf("%6zu %12.1f %14.1f %14zu %12zu\n", teams, direct_ms,
                cross_ms, direct.size(), cross.size());
    std::fflush(stdout);
  }
  std::printf(
      "\nexpectation (paper): direct N-way comparison amortises the\n"
      "construction cost; cross comparison repeats it per pair and falls\n"
      "behind as N grows.\n");
  return 0;
}
