// N-team comparison benchmark (Section 7.3): the paper offers two ways to
// compare N > 2 firewalls — cross comparison (all N(N-1)/2 pairs through
// the pairwise pipeline) and direct comparison (shape all N diagrams to a
// common refinement once, then one lockstep walk). This bench measures
// both on N perturbed variants of one policy, the diverse-design setting.
//
// Expected shape: cross comparison pays the construction cost per pair
// and grows quadratically in N; direct comparison constructs each diagram
// once and grows near-linearly, winning clearly by N = 4.
//
// The second half is the thread-scaling sweep: the same K-team session run
// on Executor pools of 1/2/4/8 workers, verified bit-identical to the
// serial result, with per-configuration wall times written to
// BENCH_parallel.json. Cross comparison is K(K-1)/2 independent pipelines,
// so on idle multicore hardware it should approach linear speedup until
// the pair count stops covering the workers.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "diverse/workflow.hpp"
#include "rt/executor.hpp"
#include "synth/synth.hpp"

namespace {

using namespace dfw;
using bench::time_ms;

DiverseDesign make_session(std::size_t teams, std::size_t rules,
                           const WorkflowOptions& options) {
  SynthConfig config;
  config.num_rules = rules;
  Rng rng(teams);
  DiverseDesign session(DecisionSet(), options);
  const Policy base = synth_policy(config, rng);
  session.submit("t0", base);
  for (std::size_t i = 1; i < teams; ++i) {
    session.submit("t" + std::to_string(i), perturb_policy(base, 15.0, rng));
  }
  return session;
}

void sweep_threads(std::FILE* json) {
  constexpr std::size_t kTeams = 6;
  constexpr std::size_t kRules = 200;
  std::printf(
      "\nthread scaling — %zu teams, %zu-rule policies, cross + direct\n",
      kTeams, kRules);
  std::printf("%8s %12s %12s %10s %10s\n", "threads", "cross(ms)",
              "direct(ms)", "speedup", "identical");

  const DiverseDesign serial_session =
      make_session(kTeams, kRules, WorkflowOptions{});
  std::vector<PairwiseReport> serial_cross;
  const double serial_cross_ms =
      time_ms([&] { serial_cross = serial_session.cross_compare(); });
  std::vector<Discrepancy> serial_direct;
  const double serial_direct_ms =
      time_ms([&] { serial_direct = serial_session.compare(); });
  std::printf("%8s %12.1f %12.1f %10s %10s\n", "serial", serial_cross_ms,
              serial_direct_ms, "1.00x", "-");

  std::fprintf(json,
               "{\n"
               "  \"bench\": \"nway_parallel\",\n"
               "  \"teams\": %zu,\n"
               "  \"rules\": %zu,\n"
               "  \"hardware_threads\": %zu,\n"
               "  \"serial\": {\"cross_ms\": %.3f, \"direct_ms\": %.3f},\n"
               "  \"sweep\": [",
               kTeams, kRules, Executor::hardware_threads(), serial_cross_ms,
               serial_direct_ms);

  bool first = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    Executor pool(threads);
    WorkflowOptions options;
    options.run.executor = &pool;
    const DiverseDesign session = make_session(kTeams, kRules, options);
    std::vector<PairwiseReport> cross;
    const double cross_ms = time_ms([&] { cross = session.cross_compare(); });
    std::vector<Discrepancy> direct;
    const double direct_ms = time_ms([&] { direct = session.compare(); });
    const bool identical = cross == serial_cross && direct == serial_direct;
    std::printf("%8zu %12.1f %12.1f %9.2fx %10s\n", threads, cross_ms,
                direct_ms, serial_cross_ms / cross_ms,
                identical ? "yes" : "NO");
    std::fflush(stdout);
    std::fprintf(json,
                 "%s\n    {\"threads\": %zu, \"cross_ms\": %.3f, "
                 "\"direct_ms\": %.3f, \"speedup_cross\": %.3f, "
                 "\"identical\": %s}",
                 first ? "" : ",", threads, cross_ms, direct_ms,
                 serial_cross_ms / cross_ms, identical ? "true" : "false");
    first = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
}

// One instrumented cross + direct session per pool size, recorded in the
// unified dfw-bench-obs-v1 schema: wall time plus the registry snapshot
// (phase.*_ns, rt.executor.*, fdd.arena.*) for each configuration.
void obs_sweep() {
  constexpr std::size_t kTeams = 6;
  constexpr std::size_t kRules = 200;
  bench::ObsReport report("bench_nway");
  for (const std::size_t threads : {0u, 2u, 8u}) {
    Executor pool(threads == 0 ? 1 : threads);
    MetricsRegistry registry;
    WorkflowOptions options;
    options.run.executor = threads == 0 ? nullptr : &pool;
    options.run.obs.metrics = &registry;
    const DiverseDesign session = make_session(kTeams, kRules, options);
    std::vector<PairwiseReport> cross;
    const std::uint64_t cross_ns =
        bench::time_ns([&] { cross = session.cross_compare(); });
    report.add("cross_compare", {{"teams", kTeams}, {"threads", threads}},
               cross_ns, registry.snapshot());
    MetricsRegistry direct_registry;
    WorkflowOptions direct_options = options;
    direct_options.run.obs.metrics = &direct_registry;
    const DiverseDesign direct_session =
        make_session(kTeams, kRules, direct_options);
    std::vector<Discrepancy> direct;
    const std::uint64_t direct_ns =
        bench::time_ns([&] { direct = direct_session.compare(); });
    report.add("direct_compare", {{"teams", kTeams}, {"threads", threads}},
               direct_ns, direct_registry.snapshot());
  }
  if (report.write("BENCH_obs.json")) {
    std::printf("wrote BENCH_obs.json\n");
  }
}

}  // namespace

int main() {
  constexpr std::size_t kRules = 200;
  std::printf("Section 7.3 — N-team comparison, %zu-rule policies\n",
              kRules);
  std::printf("%6s %12s %14s %14s %12s\n", "teams", "direct(ms)",
              "cross(ms)", "direct-diffs", "cross-pairs");

  for (const std::size_t teams : {2u, 3u, 4u, 6u, 8u}) {
    const DiverseDesign session =
        make_session(teams, kRules, WorkflowOptions{});
    std::vector<Discrepancy> direct;
    const double direct_ms = time_ms([&] { direct = session.compare(); });
    std::vector<PairwiseReport> cross;
    const double cross_ms = time_ms([&] { cross = session.cross_compare(); });
    std::printf("%6zu %12.1f %14.1f %14zu %12zu\n", teams, direct_ms,
                cross_ms, direct.size(), cross.size());
    std::fflush(stdout);
  }

  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (!json) {
    std::fprintf(stderr, "cannot open BENCH_parallel.json for writing\n");
    return 1;
  }
  sweep_threads(json);
  std::fclose(json);
  obs_sweep();
  std::printf(
      "\nwrote BENCH_parallel.json\n"
      "expectation (paper): direct N-way comparison amortises the\n"
      "construction cost; cross comparison repeats it per pair and falls\n"
      "behind as N grows. expectation (runtime): cross comparison is\n"
      "K(K-1)/2 independent pipelines and scales with the pool until the\n"
      "pair count stops covering the workers.\n");
  return 0;
}
