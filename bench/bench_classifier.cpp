// Classification-engine benchmark (library extension, not a paper
// figure): per-packet decision latency of the three execution forms —
// linear first-match scan over the rule list, pointer-walking the reduced
// FDD, and the compiled flat classifier — across policy sizes.
//
// Expected shape: the linear scan degrades with the rule count; the FDD
// and compiled forms stay near-constant (depth <= d), with the compiled
// form fastest; compilation cost is a one-time, sub-second charge.

#include <cstdio>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "engine/classifier.hpp"
#include "fdd/construct.hpp"
#include "synth/synth.hpp"

int main() {
  using namespace dfw;
  using bench::Clock;
  using bench::ms_between;

  constexpr int kPackets = 200000;
  std::printf("Per-packet classification latency (%d random packets)\n",
              kPackets);
  std::printf("%8s %14s %12s %14s %14s %12s\n", "rules", "linear(ns)",
              "fdd(ns)", "compiled(ns)", "speedup", "compile(ms)");

  for (const std::size_t n : {42u, 200u, 661u, 2000u}) {
    SynthConfig config;
    config.num_rules = n;
    Rng rng(n);
    const Policy policy = synth_policy(config, rng);
    Fdd fdd = Fdd::constant(policy.schema(), kAccept);
    double compile_ms = 0;
    {
      const auto t0 = Clock::now();
      fdd = build_reduced_fdd(policy);
      compile_ms = ms_between(t0, Clock::now());
    }
    const Classifier compiled = Classifier::compile(fdd);

    std::vector<Packet> packets;
    packets.reserve(kPackets);
    std::uniform_int_distribution<Value> ip(0, UINT32_MAX);
    std::uniform_int_distribution<Value> port(0, 65535);
    std::uniform_int_distribution<Value> proto(0, 255);
    for (int i = 0; i < kPackets; ++i) {
      packets.push_back({ip(rng), ip(rng), port(rng), port(rng), proto(rng)});
    }

    // Accumulate decisions so the work cannot be optimised away; the sums
    // double as a cross-check that all three forms agree.
    std::uint64_t sum_linear = 0;
    std::uint64_t sum_fdd = 0;
    std::uint64_t sum_compiled = 0;

    const auto t0 = Clock::now();
    for (const Packet& p : packets) {
      sum_linear += policy.evaluate(p);
    }
    const auto t1 = Clock::now();
    for (const Packet& p : packets) {
      sum_fdd += fdd.evaluate(p);
    }
    const auto t2 = Clock::now();
    for (const Packet& p : packets) {
      sum_compiled += compiled.classify(p);
    }
    const auto t3 = Clock::now();
    if (sum_linear != sum_fdd || sum_fdd != sum_compiled) {
      std::printf("DISAGREEMENT at %zu rules!\n", n);
      return 1;
    }
    const double linear_ns = ms_between(t0, t1) * 1e6 / kPackets;
    const double fdd_ns = ms_between(t1, t2) * 1e6 / kPackets;
    const double compiled_ns = ms_between(t2, t3) * 1e6 / kPackets;
    std::printf("%8zu %14.1f %12.1f %14.1f %13.1fx %12.1f\n", n, linear_ns,
                fdd_ns, compiled_ns, linear_ns / compiled_ns, compile_ms);
    std::fflush(stdout);
  }
  return 0;
}
