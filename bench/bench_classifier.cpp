// Classification-backend shoot-out (library extension, not a paper
// figure): lookup latency and batch throughput of every execution form —
// linear first-match scan, pointer-walking the reduced FDD, the bit-level
// BDD baseline, and the three compiled backends (flat_slab, prefix_trie,
// bit_parallel) — swept across policy size, batch length, and executor
// thread count. Compile cost per backend is reported separately as the
// one-time charge it is.
//
// Expected shape: the linear scan degrades with the rule count and the
// BDD baseline pays one node walk per *bit*; the compiled backends stay
// near-constant in the rule count (depth <= d). Among them, flat_slab
// wins tiny batches, while prefix_trie (fewer indexed loads on IPv4-heavy
// nodes) and bit_parallel (structure-of-arrays staging, 64 candidate
// paths per AND) pull ahead as slabs grow and batches lengthen — on a
// loaded 1-CPU CI runner the crossover may shift; the JSON records are
// the ground truth.
//
// Writes BENCH_classifier.json (dfw-bench-obs-v1): per-backend
// "compile.<backend>" records with the phase.classifier.compile.*_ns
// histograms, and "classify.<form>" records with integer params
// {rules, batch, threads} plus the engine.classifier.* counters.
// --quick shrinks the sweep for CI smoke runs.

#include <cstdio>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "bdd/packet_encode.hpp"
#include "bench_common.hpp"
#include "engine/classifier.hpp"
#include "fdd/construct.hpp"
#include "rt/executor.hpp"
#include "rt/govern.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

constexpr ClassifierBackendKind kBackends[] = {
    ClassifierBackendKind::kFlatSlab,
    ClassifierBackendKind::kPrefixTrie,
    ClassifierBackendKind::kBitParallel,
};

std::uint64_t classify_pool_batched(const Classifier& c,
                                    const std::vector<Packet>& pool,
                                    std::size_t batch, Executor* executor,
                                    MetricsRegistry* registry,
                                    std::vector<Decision>& out) {
  std::uint64_t sum = 0;
  if (batch == 1) {
    // Single-packet callers use the per-packet entry point, not a
    // degenerate 1-packet batch; measure what they would pay.
    for (const Packet& p : pool) {
      sum += c.classify(p);
    }
    return sum;
  }
  RunOptions run;
  run.executor = executor;
  run.obs.metrics = registry;
  for (std::size_t base = 0; base < pool.size(); base += batch) {
    const std::size_t len = std::min(batch, pool.size() - base);
    const std::span<const Packet> window(pool.data() + base, len);
    const std::span<Decision> window_out(out.data() + base, len);
    c.classify_into(window, window_out, run);
  }
  for (const Decision d : out) {
    sum += d;
  }
  return sum;
}

}  // namespace
}  // namespace dfw

int main(int argc, char** argv) {
  using namespace dfw;
  using bench::Clock;
  using bench::ms_between;
  using bench::time_ns;

  const std::optional<bool> quick_flag = bench::parse_quick_flag(argc, argv);
  if (!quick_flag.has_value()) {
    std::fprintf(stderr, "usage: bench_classifier [--quick]\n");
    return 2;
  }
  const bool quick = *quick_flag;

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{42, 200}
            : std::vector<std::size_t>{42, 200, 661, 2000};
  const std::size_t kPackets = quick ? 20000 : 200000;
  const std::size_t kBddPackets = quick ? 2000 : 20000;
  const std::size_t kBddMaxRules = 200;
  const std::vector<std::size_t> batches = {1, 64, 4096};
  const std::vector<std::size_t> thread_counts = {0, 2};

  bench::ObsReport report("bench_classifier");

  std::printf("Classifier backend sweep (%zu random packets per cell)\n",
              kPackets);
  std::printf("%8s %14s %6s %8s %14s %12s\n", "rules", "form", "batch",
              "threads", "ns/packet", "compile(ms)");

  for (const std::size_t n : sizes) {
    SynthConfig config;
    config.num_rules = n;
    Rng rng(n);
    const Policy policy = synth_policy(config, rng);

    std::vector<Packet> pool;
    pool.reserve(kPackets);
    std::uniform_int_distribution<Value> ip(0, UINT32_MAX);
    std::uniform_int_distribution<Value> port(0, 65535);
    std::uniform_int_distribution<Value> proto(0, 255);
    for (std::size_t i = 0; i < kPackets; ++i) {
      pool.push_back({ip(rng), ip(rng), port(rng), port(rng), proto(rng)});
    }

    // The shared FDD build: every compiled backend starts from it, so its
    // cost is charged once, not per backend.
    Fdd fdd = Fdd::constant(policy.schema(), kAccept);
    {
      MetricsRegistry registry;
      const std::uint64_t ns =
          time_ns([&] { fdd = build_reduced_fdd(policy); });
      report.add("compile.fdd", {{"rules", n}}, ns, registry.snapshot());
    }

    // Interpreted contenders: linear first-match scan and the FDD walk.
    // Their decision sums are the cross-check every backend must hit.
    std::uint64_t sum_expected = 0;
    {
      std::uint64_t sum_linear = 0;
      const std::uint64_t linear_ns = time_ns([&] {
        for (const Packet& p : pool) {
          sum_linear += policy.evaluate(p);
        }
      });
      std::uint64_t sum_fdd = 0;
      const std::uint64_t fdd_ns = time_ns([&] {
        for (const Packet& p : pool) {
          sum_fdd += fdd.evaluate(p);
        }
      });
      if (sum_linear != sum_fdd) {
        std::printf("DISAGREEMENT linear vs fdd at %zu rules!\n", n);
        return 1;
      }
      sum_expected = sum_fdd;
      MetricsRegistry registry;
      report.add("classify.linear",
                 {{"rules", n}, {"batch", 1}, {"threads", 0}}, linear_ns,
                 registry.snapshot());
      report.add("classify.fdd_walk",
                 {{"rules", n}, {"batch", 1}, {"threads", 0}}, fdd_ns,
                 registry.snapshot());
      std::printf("%8zu %14s %6d %8d %14.1f %12s\n", n, "linear", 1, 0,
                  static_cast<double>(linear_ns) / kPackets, "-");
      std::printf("%8zu %14s %6d %8d %14.1f %12s\n", n, "fdd_walk", 1, 0,
                  static_cast<double>(fdd_ns) / kPackets, "-");
    }

    // The BDD baseline walks one node per *bit*; it is the paper's
    // Section 7.5 counterpoint, kept at modest sizes (construction and
    // lookup both degrade hard with rules).
    if (n <= kBddMaxRules) {
      const BitLayout layout = layout_for(policy.schema());
      BddManager mgr(layout.total_bits);
      BddRef accept_set = mgr.zero();
      MetricsRegistry registry;
      const std::uint64_t build_ns =
          time_ns([&] { accept_set = encode_policy(mgr, layout, policy); });
      report.add("compile.bdd", {{"rules", n}}, build_ns,
                 registry.snapshot());
      std::uint64_t sum_bdd = 0;
      const std::uint64_t bdd_ns = time_ns([&] {
        for (std::size_t i = 0; i < kBddPackets; ++i) {
          const bool accepted =
              mgr.evaluate(accept_set, encode_packet(layout, pool[i]));
          sum_bdd += accepted ? kAccept : kDiscard;
        }
      });
      std::uint64_t sum_subset = 0;
      for (std::size_t i = 0; i < kBddPackets; ++i) {
        sum_subset += fdd.evaluate(pool[i]);
      }
      if (sum_bdd != sum_subset) {
        std::printf("DISAGREEMENT bdd vs fdd at %zu rules!\n", n);
        return 1;
      }
      report.add("classify.bdd",
                 {{"rules", n}, {"batch", 1}, {"threads", 0}}, bdd_ns,
                 registry.snapshot());
      std::printf("%8zu %14s %6d %8d %14.1f %12.1f\n", n, "bdd_baseline", 1,
                  0, static_cast<double>(bdd_ns) / kBddPackets,
                  static_cast<double>(build_ns) / 1e6);
    }

    for (const ClassifierBackendKind kind : kBackends) {
      MetricsRegistry compile_registry;
      CompileOptions options;
      options.backend = kind;
      options.run.obs.metrics = &compile_registry;
      std::optional<Classifier> compiled;
      double compile_ms = 0;
      try {
        const auto t0 = Clock::now();
        compiled.emplace(Classifier::compile(fdd, options));
        compile_ms = ms_between(t0, Clock::now());
      } catch (const dfw::Error&) {
        std::printf("%8zu %14s %6s %8s %14s %12s\n", n, to_string(kind),
                    "-", "-", "skipped", "path-cap");
        continue;
      }
      report.add(std::string("compile.") + to_string(kind), {{"rules", n}},
                 static_cast<std::uint64_t>(compile_ms * 1e6),
                 compile_registry.snapshot());

      std::vector<Decision> out(pool.size());
      for (const std::size_t batch : batches) {
        for (const std::size_t threads : thread_counts) {
          if (threads != 0 && batch == 1) {
            continue;  // a 1-packet batch cannot shard
          }
          std::optional<Executor> pool_executor;
          if (threads != 0) {
            pool_executor.emplace(threads);
          }
          MetricsRegistry registry;
          std::uint64_t sum = 0;
          const std::uint64_t ns = time_ns([&] {
            sum = classify_pool_batched(
                *compiled, pool, batch,
                pool_executor ? &*pool_executor : nullptr, &registry, out);
          });
          if (sum != sum_expected) {
            std::printf("DISAGREEMENT %s at %zu rules (batch %zu)!\n",
                        to_string(kind), n, batch);
            return 1;
          }
          report.add(std::string("classify.") + to_string(kind),
                     {{"rules", n}, {"batch", batch}, {"threads", threads}},
                     ns, registry.snapshot());
          std::printf("%8zu %14s %6zu %8zu %14.1f %12.1f\n", n,
                      to_string(kind), batch, threads,
                      static_cast<double>(ns) / kPackets, compile_ms);
          std::fflush(stdout);
        }
      }
    }
  }

  if (!report.write("BENCH_classifier.json")) {
    return 1;
  }
  std::printf("wrote BENCH_classifier.json\n");
  return 0;
}
