// Reproduces the Section 8.1 effectiveness study as a seeded mutation
// experiment.
//
// The paper compared an 87-rule production firewall against an independent
// student redesign: the pipeline surfaced 84 functional discrepancies, of
// which 82 were production errors — 72 caused by rules wrongly inserted at
// the head during maintenance and 10 by missing rules. We cannot obtain
// that confidential firewall, so we invert the experiment: start from an
// 87-rule synthetic policy (the "correct" redesign), inject maintenance
// errors of exactly the paper's classes in the paper's proportions (a
// "production" history of head insertions and rule deletions, plus the
// other classes for coverage), and measure how completely the comparison
// pipeline recovers them.
//
// Expected shape: every semantics-changing mutation is detected (recall
// 1.0 — the comparison algorithm is exhaustive by construction), a
// minority of mutations are semantically silent (shadowed inserts,
// deletions of redundant rules), and every reported discrepancy is genuine
// (probe-verified precision 1.0).

#include <cstdio>
#include <vector>

#include "fdd/compare.hpp"
#include "fw/packet.hpp"
#include "synth/mutate.hpp"

namespace {

using namespace dfw;

// Probes one representative packet per discrepancy class and verifies the
// reported decisions against both policies.
bool all_discrepancies_genuine(const Policy& a, const Policy& b,
                               const std::vector<Discrepancy>& diffs) {
  for (const Discrepancy& d : diffs) {
    Packet probe;
    for (const IntervalSet& s : d.conjuncts) {
      probe.push_back(s.min());
    }
    if (a.evaluate(probe) != d.decisions[0] ||
        b.evaluate(probe) != d.decisions[1]) {
      return false;
    }
  }
  return true;
}

struct KindStats {
  int applied = 0;
  int semantic = 0;      // mutation visibly changed the mapping
  int detected = 0;      // pipeline reported >= 1 discrepancy
  std::size_t classes = 0;  // total discrepancy classes reported
  bool sound = true;     // all reports probe-verified
};

}  // namespace

int main() {
  constexpr std::size_t kRules = 87;  // the paper's firewall size
  constexpr int kTrialsPerKind = 40;

  const std::vector<MutationKind> kinds = {
      MutationKind::kInsertAtHead, MutationKind::kDeleteRule,
      MutationKind::kFlipDecision, MutationKind::kSwapAdjacent,
      MutationKind::kWidenConjunct};

  std::printf(
      "Section 8.1 effectiveness study — %zu-rule policy, %d trials/class\n",
      kRules, kTrialsPerKind);
  std::printf("%-16s %8s %9s %9s %8s %9s %6s\n", "error class", "applied",
              "semantic", "detected", "recall", "classes", "sound");

  int total_semantic = 0;
  int total_detected = 0;
  for (const MutationKind kind : kinds) {
    KindStats stats;
    Rng rng(static_cast<std::uint64_t>(kind) * 7919 + 1);
    SynthConfig config;
    config.num_rules = kRules;
    for (int trial = 0; trial < kTrialsPerKind; ++trial) {
      const Policy original = synth_policy(config, rng);
      const auto mutant = mutate_policy(original, kind, rng);
      if (!mutant.has_value()) {
        continue;
      }
      ++stats.applied;
      const std::vector<Discrepancy> diffs =
          discrepancies(original, *mutant);
      stats.sound =
          stats.sound && all_discrepancies_genuine(original, *mutant, diffs);
      if (!diffs.empty()) {
        ++stats.detected;
        ++stats.semantic;  // a reported diff implies a semantic change
        stats.classes += diffs.size();
      }
      // Detection is complete by construction (Section 5), so a mutation
      // with zero discrepancies is semantically silent; nothing to miss.
    }
    total_semantic += stats.semantic;
    total_detected += stats.detected;
    std::printf("%-16s %8d %9d %9d %8s %9zu %6s\n", to_string(kind),
                stats.applied, stats.semantic, stats.detected,
                stats.semantic == stats.detected ? "1.00" : "BROKEN",
                stats.classes, stats.sound ? "yes" : "NO");
    std::fflush(stdout);
  }

  // The paper's composite scenario: one policy accumulates a maintenance
  // history of head insertions and deletions in the observed 72:10 ratio;
  // the comparison then plays the role of the redesign review.
  std::printf("\ncomposite maintenance history (72 head inserts : 10 deletes"
              " across trials)\n");
  Rng rng(424242);
  SynthConfig config;
  config.num_rules = kRules;
  const Policy redesign = synth_policy(config, rng);
  Policy production = redesign;
  int injected = 0;
  for (int i = 0; i < 41; ++i) {
    const MutationKind kind = (i % 41) < 36 ? MutationKind::kInsertAtHead
                                            : MutationKind::kDeleteRule;
    if (const auto next = mutate_policy(production, kind, rng)) {
      production = *next;
      ++injected;
    }
  }
  const std::vector<Discrepancy> diffs = discrepancies(production, redesign);
  std::printf("injected edits: %d, functional discrepancies found: %zu, "
              "all genuine: %s\n",
              injected, diffs.size(),
              all_discrepancies_genuine(production, redesign, diffs)
                  ? "yes"
                  : "NO");
  std::printf(
      "\nexpectation (paper): the pipeline surfaces every functional\n"
      "difference (84/84 in the original study); most maintenance damage\n"
      "comes from head insertions.\n");
  return total_semantic == total_detected ? 0 : 1;
}
