// Shared helpers for the figure benchmarks: wall-clock timing and simple
// aligned table printing so each binary can emit the paper's series as
// plain text.

#pragma once

#include <chrono>
#include <cstdio>

namespace dfw::bench {

using Clock = std::chrono::steady_clock;

inline double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Times one call and returns milliseconds.
template <typename F>
double time_ms(F&& fn) {
  const auto start = Clock::now();
  fn();
  return ms_between(start, Clock::now());
}

}  // namespace dfw::bench
