// Shared helpers for the figure benchmarks: wall-clock timing, simple
// aligned table printing, and the unified machine-readable result schema
// every bench binary emits alongside its tables.
//
// Schema ("dfw-bench-obs-v1"): one JSON object per file,
//
//   {"schema": "dfw-bench-obs-v1",
//    "bench": "<binary name>",
//    "records": [
//      {"name": "<measurement>",
//       "params": {"<knob>": <integer>, ...},
//       "wall_ns": <integer>,
//       "metrics": {<MetricsSnapshot::to_json()>}},
//      ...]}
//
// The metrics object carries the unified registry names (rt.executor.*,
// fdd.arena.*, rt.govern.*, phase.*_ns, gen.*) so downstream tooling can
// join per-phase timings with counter deltas without per-bench parsers.

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace dfw::bench {

/// The benches' one shared flag: --quick shrinks the sweep for CI smoke
/// and regression runs. Returns the quick state, or nullopt on any other
/// argument (the caller prints its usage and exits 2).
inline std::optional<bool> parse_quick_flag(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
    } else {
      return std::nullopt;
    }
  }
  return quick;
}

using Clock = std::chrono::steady_clock;

inline double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Times one call and returns milliseconds.
template <typename F>
double time_ms(F&& fn) {
  const auto start = Clock::now();
  fn();
  return ms_between(start, Clock::now());
}

/// Times one call and returns nanoseconds (for the obs records).
template <typename F>
std::uint64_t time_ns(F&& fn) {
  const auto start = Clock::now();
  fn();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// Integer-valued parameters of one measurement, in insertion order.
using ObsParams = std::vector<std::pair<std::string, std::uint64_t>>;

/// Accumulates dfw-bench-obs-v1 records and writes the JSON document.
class ObsReport {
 public:
  explicit ObsReport(std::string bench) : bench_(std::move(bench)) {}

  /// Appends one record. `metrics` is a registry snapshot taken after the
  /// measured region (counters are cumulative; take per-record registries
  /// or deltas upstream when isolation matters).
  void add(std::string name, ObsParams params, std::uint64_t wall_ns,
           const MetricsSnapshot& metrics) {
    records_.push_back(Record{std::move(name), std::move(params), wall_ns,
                              metrics.to_json()});
  }

  std::string json() const {
    std::string out = "{\n  \"schema\": \"dfw-bench-obs-v1\",\n  \"bench\": \"";
    out += bench_;
    out += "\",\n  \"records\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"name\": \"" + r.name + "\", \"params\": {";
      for (std::size_t p = 0; p < r.params.size(); ++p) {
        if (p != 0) {
          out += ", ";
        }
        out += "\"" + r.params[p].first +
               "\": " + std::to_string(r.params[p].second);
      }
      out += "}, \"wall_ns\": " + std::to_string(r.wall_ns) +
             ", \"metrics\": " + r.metrics_json + "}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

  /// Writes the document to `path`; returns false (with a message on
  /// stderr) when the file cannot be written.
  bool write(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      return false;
    }
    const std::string doc = json();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    return ok;
  }

 private:
  struct Record {
    std::string name;
    ObsParams params;
    std::uint64_t wall_ns;
    std::string metrics_json;
  };

  std::string bench_;
  std::vector<Record> records_;
};

}  // namespace dfw::bench
