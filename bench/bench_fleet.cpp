// Fleet-scale static analysis: simplification effectiveness and sharded
// audit throughput over synthetic fleets (synth::make_fleet — shared
// object groups, per-site perturbation, salted duplicate/split
// redundancy).
//
// Two series:
//   simplify   per-fleet rule reduction: total rules before/after the
//              proven simplify pass, per-transform counts, proof status
//              tally — the paper-style effectiveness table
//   audit      end-to-end run_fleet wall time (parse -> simplify -> lint)
//              at 1/2/8 executor threads over the same fleet, with the
//              byte-determinism of the aggregate SARIF/JSON reports
//              checked across thread counts (the determinism contract at
//              the acceptance scale of 100 devices)
//
// Writes BENCH_fleet.json (dfw-bench-obs-v1). --quick trims the site
// sweep but keeps per-site geometry identical, so quick records compare
// against the committed baseline under dfw_bench_diff --key-params=
// sites,threads.

#include <cstdio>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fleet/fleet.hpp"
#include "fw/format.hpp"
#include "obs/metrics.hpp"
#include "rt/executor.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

constexpr std::size_t kRulesPerSite = 60;
constexpr std::uint64_t kSeed = 20260808;

std::vector<fleet::FleetSource> render_fleet(std::size_t sites) {
  FleetSynthConfig config;
  config.sites = sites;
  config.base.num_rules = kRulesPerSite;
  config.seed = kSeed;
  const std::vector<Policy> policies = make_fleet(config);
  std::vector<fleet::FleetSource> sources;
  sources.reserve(policies.size());
  char name[32];
  for (std::size_t i = 0; i < policies.size(); ++i) {
    std::snprintf(name, sizeof name, "site%04zu.fw", i);
    fleet::FleetSource source;
    source.item.format = fleet::DeviceFormat::kNative;
    source.item.path = name;
    source.item.name = name;
    source.text = format_policy(policies[i], default_decisions());
    sources.push_back(std::move(source));
  }
  return sources;
}

struct FleetTotals {
  std::uint64_t rules_before = 0;
  std::uint64_t rules_after = 0;
  std::uint64_t proven = 0;
  std::uint64_t dead = 0;
  std::uint64_t merged = 0;
  std::uint64_t findings = 0;
  std::uint64_t distinct = 0;
};

FleetTotals totals_of(const fleet::FleetReport& report) {
  FleetTotals t;
  for (const fleet::DeviceReport& dev : report.devices) {
    t.rules_before += dev.simplify.rules_before;
    t.rules_after += dev.simplify.rules_after;
    t.proven += dev.simplify.proof == ProofStatus::kProven ? 1 : 0;
    t.dead += dev.simplify.stats.dead_eliminated;
    t.merged += dev.simplify.stats.adjacent_merged +
                dev.simplify.stats.run_merged;
  }
  t.findings = report.findings_total;
  t.distinct = report.findings_distinct;
  return t;
}

}  // namespace
}  // namespace dfw

int main(int argc, char** argv) {
  using namespace dfw;
  const std::optional<bool> quick = bench::parse_quick_flag(argc, argv);
  if (!quick.has_value()) {
    std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
    return 2;
  }
  const std::vector<std::size_t> site_sweep =
      *quick ? std::vector<std::size_t>{10, 25}
             : std::vector<std::size_t>{10, 50, 100};

  bench::ObsReport report("bench_fleet");
  std::printf("%8s %12s %11s %9s %8s %8s %10s\n", "sites", "rules_before",
              "rules_after", "reduction", "proven", "dead", "merged");

  for (const std::size_t sites : site_sweep) {
    const std::vector<fleet::FleetSource> sources = render_fleet(sites);

    // --- simplify effectiveness (serial, the canonical report) ---
    fleet::FleetOptions options;
    MetricsRegistry serial_metrics;
    options.run.obs.metrics = &serial_metrics;
    fleet::FleetReport serial;
    const std::uint64_t serial_ns =
        bench::time_ns([&] { serial = run_fleet(sources, options); });
    const FleetTotals t = totals_of(serial);
    if (t.rules_after >= t.rules_before) {
      std::fprintf(stderr,
                   "bench_fleet: no measurable reduction at %zu sites\n",
                   sites);
      return 1;
    }
    const double reduction =
        100.0 * static_cast<double>(t.rules_before - t.rules_after) /
        static_cast<double>(t.rules_before);
    std::printf("%8zu %12llu %11llu %8.1f%% %8llu %8llu %10llu\n", sites,
                static_cast<unsigned long long>(t.rules_before),
                static_cast<unsigned long long>(t.rules_after), reduction,
                static_cast<unsigned long long>(t.proven),
                static_cast<unsigned long long>(t.dead),
                static_cast<unsigned long long>(t.merged));
    report.add("simplify",
               {{"sites", sites},
                {"rules_before", t.rules_before},
                {"rules_after", t.rules_after},
                {"proofs_proven", t.proven},
                {"dead_eliminated", t.dead},
                {"merged", t.merged},
                {"findings", t.findings},
                {"findings_distinct", t.distinct}},
               serial_ns, serial_metrics.snapshot());

    // --- sharded audit + determinism across thread counts ---
    const std::string sarif = render_fleet_sarif(serial);
    const std::string json = render_fleet_json(serial);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      Executor executor(threads);
      fleet::FleetOptions sharded;
      MetricsRegistry metrics;
      sharded.run.executor = &executor;
      sharded.run.obs.metrics = &metrics;
      fleet::FleetReport run;
      const std::uint64_t ns =
          bench::time_ns([&] { run = run_fleet(sources, sharded); });
      if (render_fleet_sarif(run) != sarif || render_fleet_json(run) != json) {
        std::fprintf(stderr,
                     "bench_fleet: report not deterministic at %zu sites, "
                     "%zu threads\n",
                     sites, threads);
        return 1;
      }
      report.add("audit",
                 {{"sites", sites},
                  {"threads", threads},
                  {"deterministic", 1}},
                 ns, metrics.snapshot());
    }
  }

  std::printf("\naggregate SARIF byte-deterministic at 1/2/8 threads for "
              "every fleet size\n");
  return report.write("BENCH_fleet.json") ? 0 : 1;
}
