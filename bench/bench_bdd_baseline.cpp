// Reproduces the Section 7.5 "why not BDDs" comparison.
//
// The paper implemented a CUDD-based diff and found that reading the
// result back as rule-like entries yields millions of bit-level cubes even
// for small firewalls, whereas the FDD pipeline emits a handful of
// field-level discrepancies. We rebuild that experiment against our own
// ROBDD engine: for each policy pair we report the FDD discrepancy count
// (human-readable rules) next to the BDD diff's one-path (cube) count —
// the entries a BDD-based report would need to print.
//
// Expected shape: cubes exceed FDD discrepancies by orders of magnitude
// and grow rapidly with rule count; FDD discrepancy counts stay near the
// number of genuinely differing traffic classes.

#include <cstdio>
#include <vector>

#include "bdd/packet_encode.hpp"
#include "bench_common.hpp"
#include "fdd/compare.hpp"
#include "fw/parser.hpp"
#include "synth/synth.hpp"

namespace {

using namespace dfw;

void report(const char* label, const Policy& a, const Policy& b) {
  using bench::time_ms;
  std::vector<Discrepancy> fdd_diffs;
  const double fdd_ms = time_ms([&] { fdd_diffs = discrepancies(a, b); });

  const BitLayout layout = layout_for(a.schema());
  BddManager mgr(layout.total_bits);
  BddRef diff = mgr.zero();
  const double bdd_ms =
      time_ms([&] { diff = policy_diff(mgr, layout, a, b); });
  const std::uint64_t cubes = mgr.cube_count(diff);

  std::printf("%-28s %10zu %14llu %10.1f %10.1f %12zu\n", label,
              fdd_diffs.size(), static_cast<unsigned long long>(cubes),
              fdd_ms, bdd_ms, mgr.node_count());
}

}  // namespace

int main() {
  std::printf("Section 7.5 — FDD vs BDD diff readability\n");
  std::printf("%-28s %10s %14s %10s %10s %12s\n", "policy pair", "FDD-diffs",
              "BDD-cubes", "FDD(ms)", "BDD(ms)", "BDD-nodes");

  // The paper's running example (Tables 1-2).
  {
    const Schema schema = example_schema();
    const DecisionSet& ds = default_decisions();
    const Policy a = parse_policy(schema, ds,
                                  "accept  I=0 D=192.168.0.1 N=25 P=tcp\n"
                                  "discard I=0 S=224.168.0.0/16\n"
                                  "accept\n");
    const Policy b = parse_policy(schema, ds,
                                  "discard I=0 S=224.168.0.0/16\n"
                                  "accept  I=0 D=192.168.0.1 N=25 P=tcp\n"
                                  "discard I=0 D=192.168.0.1\n"
                                  "accept\n");
    report("paper example (3 vs 4)", a, b);
  }

  // Independent synthetic pairs of growing size.
  for (const std::size_t n : {10u, 20u, 40u, 80u}) {
    SynthConfig config;
    config.num_rules = n;
    Rng rng(n);
    const Policy a = synth_policy(config, rng);
    const Policy b = synth_policy(config, rng);
    char label[64];
    std::snprintf(label, sizeof label, "synthetic pair (%zu rules)",
                  static_cast<std::size_t>(n));
    report(label, a, b);
  }

  std::printf(
      "\nexpectation (paper): BDD cube counts run orders of magnitude\n"
      "beyond the FDD discrepancy counts (\"millions of rules\" for small\n"
      "firewalls), because every cube speaks in packet bits, not fields.\n");
  return 0;
}
